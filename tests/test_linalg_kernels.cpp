/// \file test_linalg_kernels.cpp
/// \brief Unit and property tests for the Table II kernels.

#include <gtest/gtest.h>

#include <vector>

#include "linalg/kernels.hpp"
#include "support/rng.hpp"

namespace v2d::linalg {
namespace {

using vla::Context;
using vla::VectorArch;

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Parameterized over (vector bits, length) so tails and all VLs are hit.
class KernelSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {
protected:
  unsigned bits() const { return std::get<0>(GetParam()); }
  std::size_t n() const { return std::get<1>(GetParam()); }
};

TEST_P(KernelSweep, Dprod) {
  Context ctx((VectorArch(bits())));
  Rng rng(1);
  const auto x = random_vec(n(), rng), y = random_vec(n(), rng);
  double want = 0.0;
  for (std::size_t i = 0; i < n(); ++i) want += x[i] * y[i];
  EXPECT_NEAR(dprod(ctx, x, y), want, 1e-12 * (n() + 1));
}

TEST_P(KernelSweep, Daxpy) {
  Context ctx((VectorArch(bits())));
  Rng rng(2);
  const auto x = random_vec(n(), rng);
  auto y = random_vec(n(), rng);
  const auto y0 = y;
  daxpy(ctx, 1.7, x, y);
  for (std::size_t i = 0; i < n(); ++i)
    EXPECT_DOUBLE_EQ(y[i], 1.7 * x[i] + y0[i]);
}

TEST_P(KernelSweep, DscalIsCMinusDy) {
  Context ctx((VectorArch(bits())));
  Rng rng(3);
  auto y = random_vec(n(), rng);
  const auto y0 = y;
  dscal(ctx, 0.75, 2.0, y);
  for (std::size_t i = 0; i < n(); ++i)
    EXPECT_DOUBLE_EQ(y[i], 0.75 - 2.0 * y0[i]);
}

TEST_P(KernelSweep, Ddaxpy) {
  Context ctx((VectorArch(bits())));
  Rng rng(4);
  const auto x = random_vec(n(), rng), y = random_vec(n(), rng);
  auto z = random_vec(n(), rng);
  const auto z0 = z;
  ddaxpy(ctx, 1.25, x, -0.5, y, z);
  // The kernel evaluates (x*a + z) then (y*b + t); the reference below may
  // round differently, so compare to a few ulps.
  for (std::size_t i = 0; i < n(); ++i)
    EXPECT_NEAR(z[i], 1.25 * x[i] - 0.5 * y[i] + z0[i], 1e-14);
}

TEST_P(KernelSweep, XpbyCopySubHadamardFill) {
  Context ctx((VectorArch(bits())));
  Rng rng(5);
  const auto x = random_vec(n(), rng);
  auto y = random_vec(n(), rng);
  const auto y0 = y;
  xpby(ctx, x, 0.3, y);
  for (std::size_t i = 0; i < n(); ++i)
    EXPECT_DOUBLE_EQ(y[i], x[i] + 0.3 * y0[i]);

  std::vector<double> z(n());
  copy(ctx, x, z);
  EXPECT_EQ(z, x);

  sub(ctx, x, y, z);
  for (std::size_t i = 0; i < n(); ++i) EXPECT_DOUBLE_EQ(z[i], x[i] - y[i]);

  hadamard(ctx, x, y, z);
  for (std::size_t i = 0; i < n(); ++i) EXPECT_DOUBLE_EQ(z[i], x[i] * y[i]);

  fill(ctx, -2.5, z);
  for (std::size_t i = 0; i < n(); ++i) EXPECT_DOUBLE_EQ(z[i], -2.5);
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndLengths, KernelSweep,
    ::testing::Combine(::testing::Values(128u, 512u, 2048u),
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{64}, std::size_t{1000})));

TEST(StencilRow, MatchesReference) {
  Context ctx((VectorArch(512)));
  const std::size_t n = 50;
  Rng rng(6);
  const auto cc = random_vec(n, rng), cw = random_vec(n, rng),
             ce = random_vec(n, rng), cs = random_vec(n, rng),
             cn = random_vec(n, rng);
  // xc with one ghost on each side.
  const auto xc_buf = random_vec(n + 2, rng);
  const auto xs = random_vec(n, rng), xn = random_vec(n, rng);
  std::vector<double> y(n);
  stencil_row(ctx, cc, cw, ce, cs, cn, xc_buf.data() + 1, xs.data(), xn.data(),
              y);
  for (std::size_t i = 0; i < n; ++i) {
    const double want = cc[i] * xc_buf[i + 1] + cw[i] * xc_buf[i] +
                        ce[i] * xc_buf[i + 2] + cs[i] * xs[i] + cn[i] * xn[i];
    EXPECT_NEAR(y[i], want, 1e-14);
  }
}

TEST(CouplingRow, AddsOtherSpecies) {
  Context ctx((VectorArch(512)));
  Rng rng(7);
  const std::size_t n = 33;
  const auto csp = random_vec(n, rng), xo = random_vec(n, rng);
  auto y = random_vec(n, rng);
  const auto y0 = y;
  coupling_row(ctx, csp, xo.data(), y);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(y[i], y0[i] + csp[i] * xo[i]);
}

TEST(KernelRecording, DaxpyOpMix) {
  Context ctx((VectorArch(512)));
  std::vector<double> x(64, 1.0), y(64, 2.0);
  daxpy(ctx, 2.0, x, y);
  const auto c = ctx.take_counts();
  const auto idx = [](sim::OpClass o) { return static_cast<std::size_t>(o); };
  EXPECT_EQ(c.lanes[idx(sim::OpClass::LoadContig)], 128u);  // x and y
  EXPECT_EQ(c.lanes[idx(sim::OpClass::StoreContig)], 64u);
  EXPECT_EQ(c.lanes[idx(sim::OpClass::FlopFma)], 64u);
  EXPECT_EQ(c.bytes_moved(), (128u + 64u) * 8);
}

TEST(KernelRecording, DprodUsesOneFinalReduce) {
  Context ctx((VectorArch(512)));
  std::vector<double> x(1000, 1.0), y(1000, 1.0);
  (void)dprod(ctx, x, y);
  const auto c = ctx.take_counts();
  // The canonical SVE dot product reduces once per call, not per strip.
  EXPECT_EQ(c.instr[static_cast<std::size_t>(sim::OpClass::Reduce)], 1u);
}

TEST(Kernels, LengthMismatchRejected) {
  Context ctx((VectorArch(512)));
  std::vector<double> a(4), b(5);
  EXPECT_THROW(dprod(ctx, a, b), Error);
  EXPECT_THROW(daxpy(ctx, 1.0, a, b), Error);
  EXPECT_THROW(copy(ctx, a, b), Error);
}

}  // namespace
}  // namespace v2d::linalg
