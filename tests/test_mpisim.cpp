/// \file test_mpisim.cpp
/// \brief Unit tests for topology, placement, network cost model,
/// execution pricer and the message-queue simulator.

#include <gtest/gtest.h>

#include "compiler/profile.hpp"
#include "support/error.hpp"
#include "mpisim/exec_model.hpp"
#include "mpisim/msgqueue.hpp"
#include "mpisim/netcost.hpp"
#include "mpisim/placement.hpp"
#include "mpisim/topology.hpp"

namespace v2d::mpisim {
namespace {

// --- topology ---------------------------------------------------------------

TEST(Topology, RankCoordinateRoundTrip) {
  const CartTopology t(5, 4);
  EXPECT_EQ(t.size(), 20);
  for (int r = 0; r < t.size(); ++r) {
    EXPECT_EQ(t.rank_of(t.px1_of(r), t.px2_of(r)), r);
  }
}

TEST(Topology, NeighborsAndBoundaries) {
  const CartTopology t(3, 2);
  // Corner rank 0: no west, no south.
  EXPECT_FALSE(t.neighbor(0, Dir::West).has_value());
  EXPECT_FALSE(t.neighbor(0, Dir::South).has_value());
  EXPECT_EQ(t.neighbor(0, Dir::East).value(), 1);
  EXPECT_EQ(t.neighbor(0, Dir::North).value(), 3);
  // Interior-ish rank 1 has 3 neighbours in a 3x2 grid.
  EXPECT_EQ(t.degree(1), 3);
  EXPECT_EQ(t.degree(0), 2);
}

TEST(Topology, OppositeDirections) {
  EXPECT_EQ(opposite(Dir::West), Dir::East);
  EXPECT_EQ(opposite(Dir::North), Dir::South);
}

TEST(Topology, NeighborSymmetry) {
  const CartTopology t(4, 3);
  for (int r = 0; r < t.size(); ++r) {
    for (int d = 0; d < kNumDirs; ++d) {
      const auto dir = static_cast<Dir>(d);
      if (const auto nb = t.neighbor(r, dir)) {
        EXPECT_EQ(t.neighbor(*nb, opposite(dir)).value(), r);
      }
    }
  }
}

// --- placement --------------------------------------------------------------

TEST(PlacementTest, ScatterAcrossCmgs) {
  const Placement p(10);  // one A64FX node
  // Cyclic scatter: first four ranks land on distinct CMGs.
  EXPECT_EQ(p.cmg_of(0), 0);
  EXPECT_EQ(p.cmg_of(1), 1);
  EXPECT_EQ(p.cmg_of(2), 2);
  EXPECT_EQ(p.cmg_of(3), 3);
  EXPECT_EQ(p.cmg_of(4), 0);
  // 10 ranks over 4 CMGs: shares are 3,3,2,2.
  EXPECT_EQ(p.ranks_on_cmg(0), 3);
  EXPECT_EQ(p.ranks_on_cmg(1), 3);
  EXPECT_EQ(p.ranks_on_cmg(2), 2);
  EXPECT_EQ(p.ranks_on_cmg(3), 2);
}

TEST(PlacementTest, NodeBoundaries) {
  const Placement p(50);  // spills onto a second node at rank 48
  EXPECT_EQ(p.node_of(47), 0);
  EXPECT_EQ(p.node_of(48), 1);
  EXPECT_EQ(p.nodes_used(), 2);
  EXPECT_TRUE(p.same_node(0, 47));
  EXPECT_FALSE(p.same_node(0, 48));
  // Second node holds only 2 ranks.
  EXPECT_EQ(p.ranks_on_cmg(48), 1);
}

TEST(PlacementTest, FullNodeSharesEvenly) {
  const Placement p(48);
  for (int r = 0; r < 48; ++r) EXPECT_EQ(p.ranks_on_cmg(r), 12);
}

// --- netcost ----------------------------------------------------------------

compiler::MpiStackModel test_stack() {
  compiler::MpiStackModel s;
  s.name = "test";
  s.latency_intra_node_s = 1e-6;
  s.latency_inter_node_s = 2e-6;
  s.bandwidth_Bps = 1e9;
  s.allreduce_stage_overhead_s = 0.5e-6;
  s.per_rank_overhead_s = 0.1e-6;
  return s;
}

TEST(NetCostTest, EagerBoundaryIsInclusive) {
  // Exactly kEagerLimit bytes still prices eager; one byte more adds the
  // rendezvous handshake round-trip — intra- and inter-node.
  const Placement p(50);  // ranks 0,1 share node 0; rank 49 is on node 1
  const NetCost n(test_stack(), p);
  const double bw_byte = 1.0 / test_stack().bandwidth_Bps;
  for (const int dst : {1, 49}) {
    const bool inter = !p.same_node(0, dst);
    const double lat = inter ? test_stack().latency_inter_node_s
                             : test_stack().latency_intra_node_s;
    const double at_limit = n.pt2pt(0, dst, NetCost::kEagerLimit);
    const double over_limit = n.pt2pt(0, dst, NetCost::kEagerLimit + 1);
    EXPECT_DOUBLE_EQ(at_limit,
                     lat + static_cast<double>(NetCost::kEagerLimit) *
                               bw_byte);
    EXPECT_DOUBLE_EQ(over_limit,
                     2.0 * lat +
                         static_cast<double>(NetCost::kEagerLimit + 1) *
                             bw_byte);
  }
}

TEST(NetCostTest, AllreduceSplitsStageLatencyByStageIndex) {
  // 96 ranks over 2 nodes of 48 cores: 7 recursive-doubling stages, of
  // which the first floor(log2(48)) = 5 exchange with partners inside the
  // node (distance 1..16) and only the last 2 cross the fabric.
  const compiler::MpiStackModel s = test_stack();
  const Placement p(96);
  ASSERT_EQ(p.nodes_used(), 2);
  const NetCost n(s, p);
  const std::uint64_t bytes = 64;
  const int stages = 7;
  const int intra = 5;
  const double per_stage = static_cast<double>(bytes) / s.bandwidth_Bps +
                           s.allreduce_stage_overhead_s;
  const double progress =
      s.per_rank_overhead_s * 96.0 * 96.0 / p.cores_per_node();
  const double expected = stages * per_stage +
                          intra * s.latency_intra_node_s +
                          (stages - intra) * s.latency_inter_node_s +
                          progress;
  EXPECT_DOUBLE_EQ(n.allreduce(bytes), expected);
  // The split must price below the old all-stages-inter-node model and
  // above a hypothetical all-intra-node one.
  EXPECT_LT(n.allreduce(bytes),
            stages * (per_stage + s.latency_inter_node_s) + progress);
  EXPECT_GT(n.allreduce(bytes),
            stages * (per_stage + s.latency_intra_node_s) + progress);
}

TEST(NetCostTest, SingleNodeAllreduceAllIntraNode) {
  // All stages of a one-node job pay intra-node latency only.
  const compiler::MpiStackModel s = test_stack();
  const Placement p(32);
  ASSERT_EQ(p.nodes_used(), 1);
  const NetCost n(s, p);
  const int stages = 5;
  const double per_stage = 16.0 / s.bandwidth_Bps +
                           s.allreduce_stage_overhead_s +
                           s.latency_intra_node_s;
  const double progress =
      s.per_rank_overhead_s * 32.0 * 32.0 / p.cores_per_node();
  EXPECT_DOUBLE_EQ(n.allreduce(16), stages * per_stage + progress);
}

TEST(NetCostTest, EagerVsRendezvous) {
  const Placement p(2);
  const NetCost n(test_stack(), p);
  const double small = n.pt2pt(0, 1, 1024);
  const double large = n.pt2pt(0, 1, NetCost::kEagerLimit + 1);
  // Rendezvous pays an extra handshake latency beyond the bandwidth term.
  const double bw_delta =
      (NetCost::kEagerLimit + 1.0 - 1024.0) / test_stack().bandwidth_Bps;
  EXPECT_GT(large - small, bw_delta + 0.9e-6);
}

TEST(NetCostTest, InterNodeCostsMore) {
  const Placement p(50);
  const NetCost n(test_stack(), p);
  EXPECT_GT(n.pt2pt(0, 49, 1024), n.pt2pt(0, 1, 1024));
}

TEST(NetCostTest, AllreduceGrowsWithRanks) {
  double prev = 0.0;
  for (int ranks : {2, 4, 8, 16, 32}) {
    const Placement p(ranks);
    const NetCost n(test_stack(), p);
    const double t = n.allreduce(16);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(NetCostTest, SingleRankAllreduceFree) {
  const Placement p(1);
  const NetCost n(test_stack(), p);
  EXPECT_DOUBLE_EQ(n.allreduce(1024), 0.0);
}

TEST(NetCostTest, GangedCheaperThanSeparate) {
  // One allreduce of 3 doubles must beat three of 1 double (the paper's
  // ganging rationale).
  const Placement p(16);
  const NetCost n(test_stack(), p);
  EXPECT_LT(n.allreduce(24), 3.0 * n.allreduce(8));
}

// --- exec model -------------------------------------------------------------

std::vector<compiler::CodegenProfile> two_profiles() {
  return {compiler::cray_2103(), compiler::cray_2103().without_sve()};
}

sim::KernelCounts small_kernel() {
  sim::KernelCounts c;
  c.record(sim::OpClass::FlopFma, 8, 100);
  c.record(sim::OpClass::LoadContig, 8, 200);
  c.bytes_read = 200 * 64;
  c.calls = 1;
  return c;
}

TEST(ExecModelTest, KernelAdvancesOnlyThatRank) {
  ExecModel em(sim::MachineSpec::a64fx(), two_profiles(), 4);
  em.kernel(2, compiler::KernelFamily::Matvec, "matvec", small_kernel(),
            16 * 1024);
  EXPECT_GT(em.rank_time(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(em.rank_time(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(em.elapsed(0), em.rank_time(0, 2));
}

TEST(ExecModelTest, SveProfileFasterThanScalar) {
  ExecModel em(sim::MachineSpec::a64fx(), two_profiles(), 1);
  em.kernel(0, compiler::KernelFamily::Daxpy, "daxpy", small_kernel(),
            16 * 1024);
  EXPECT_LT(em.elapsed(0), em.elapsed(1));  // profile 0 = SVE
}

TEST(ExecModelTest, AllreduceSynchronizesClocks) {
  ExecModel em(sim::MachineSpec::a64fx(), two_profiles(), 4);
  em.kernel(1, compiler::KernelFamily::Matvec, "matvec", small_kernel(),
            16 * 1024);
  em.allreduce(16, "mpi_allreduce");
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(em.rank_time(0, r), em.elapsed(0));
  }
  EXPECT_GT(em.merged_ledger(0).at("mpi_allreduce").comm_seconds, 0.0);
}

TEST(ExecModelTest, ExchangeChargesBothEnds) {
  ExecModel em(sim::MachineSpec::a64fx(), two_profiles(), 2);
  em.exchange({Transfer{0, 1, 4096, false}}, "mpi_halo");
  EXPECT_GT(em.rank_time(0, 0), 0.0);
  EXPECT_GT(em.rank_time(0, 1), 0.0);
}

TEST(ExecModelTest, ExchangeLedgersCountReceivedVolume) {
  // One 0→1 transfer: the receiver's ledger must carry the message and
  // its bytes too, not only the sender's (received halo volume used to
  // vanish from per-rank breakdowns).
  ExecModel em(sim::MachineSpec::a64fx(), two_profiles(), 2);
  em.exchange({Transfer{0, 1, 4096, false}}, "mpi_halo");
  for (const int r : {0, 1}) {
    const auto& entry = em.ledger(0, r).at("mpi_halo");
    EXPECT_EQ(entry.comm_messages, 1u) << "rank " << r;
    EXPECT_EQ(entry.comm_bytes, 4096u) << "rank " << r;
  }
  // A bidirectional pair: each rank sent one and received one message.
  ExecModel em2(sim::MachineSpec::a64fx(), two_profiles(), 2);
  em2.exchange({Transfer{0, 1, 4096, false}, Transfer{1, 0, 2048, false}},
               "mpi_halo");
  for (const int r : {0, 1}) {
    const auto& entry = em2.ledger(0, r).at("mpi_halo");
    EXPECT_EQ(entry.comm_messages, 2u) << "rank " << r;
    EXPECT_EQ(entry.comm_bytes, 4096u + 2048u) << "rank " << r;
  }
}

TEST(ExecModelTest, SingleRankAllreduceLeavesLedgerClean) {
  // NetCost::allreduce is zero at one rank; recording a payload-carrying
  // ledger entry anyway put phantom bytes into single-rank breakdowns.
  ExecModel em(sim::MachineSpec::a64fx(), two_profiles(), 1);
  em.allreduce(1024, "mpi_allreduce");
  EXPECT_FALSE(em.ledger(0, 0).has("mpi_allreduce"));
  EXPECT_DOUBLE_EQ(em.elapsed(0), 0.0);
  // Multi-rank jobs still record exactly one entry per rank per call.
  ExecModel em2(sim::MachineSpec::a64fx(), two_profiles(), 2);
  em2.allreduce(1024, "mpi_allreduce");
  for (const int r : {0, 1}) {
    const auto& entry = em2.ledger(0, r).at("mpi_allreduce");
    EXPECT_EQ(entry.comm_messages, 1u);
    EXPECT_EQ(entry.comm_bytes, 1024u);
  }
}

TEST(ExecModelTest, StridedTransfersCostMore) {
  ExecModel a(sim::MachineSpec::a64fx(), two_profiles(), 2);
  ExecModel b(sim::MachineSpec::a64fx(), two_profiles(), 2);
  a.exchange({Transfer{0, 1, 4096, false}}, "h");
  b.exchange({Transfer{0, 1, 4096, true}}, "h");
  EXPECT_GT(b.elapsed(0), a.elapsed(0));
}

TEST(ExecModelTest, ExchangeWaitsForLateNeighbour) {
  ExecModel em(sim::MachineSpec::a64fx(), two_profiles(), 2);
  em.kernel(1, compiler::KernelFamily::Matvec, "matvec", small_kernel(),
            16 * 1024);
  const double t1 = em.rank_time(0, 1);
  em.exchange({Transfer{1, 0, 1024, false}}, "mpi_halo");
  // Rank 0 cannot finish the exchange before rank 1 even arrived.
  EXPECT_GT(em.rank_time(0, 0), t1);
}

TEST(ExecModelTest, ResetClearsState) {
  ExecModel em(sim::MachineSpec::a64fx(), two_profiles(), 2);
  em.kernel(0, compiler::KernelFamily::Matvec, "m", small_kernel(), 1024);
  em.reset();
  EXPECT_DOUBLE_EQ(em.elapsed(0), 0.0);
  EXPECT_TRUE(em.merged_ledger(0).regions().empty());
}

// --- msgqueue -----------------------------------------------------------------

NetCost simple_net(int ranks) { return NetCost(test_stack(), Placement(ranks)); }

TEST(MsgQueue, EagerSendCompletesEarly) {
  MsgQueueSim sim(simple_net(2), 2);
  const int s = sim.isend(0, 1, /*tag=*/7, 1024);
  const int r = sim.irecv(1, 0, 7);
  const double t_send = sim.wait(s);
  const double t_recv = sim.wait(r);
  EXPECT_LT(t_send, t_recv);  // sender only pays injection
  EXPECT_EQ(sim.pending(), 0);
}

TEST(MsgQueue, RendezvousBlocksSenderOnLateReceiver) {
  MsgQueueSim sim(simple_net(2), 2);
  const std::uint64_t big = NetCost::kEagerLimit * 4;
  const int s = sim.isend(0, 1, 0, big);
  sim.compute(1, 1.0);  // receiver shows up a second later
  const int r = sim.irecv(1, 0, 0);
  EXPECT_GT(sim.wait(s), 1.0);  // sender waited for the handshake
  sim.wait(r);
}

TEST(MsgQueue, EagerReceiverDoesNotBlockSender) {
  MsgQueueSim sim(simple_net(2), 2);
  const int s = sim.isend(0, 1, 0, 512);
  sim.compute(1, 1.0);
  const int r = sim.irecv(1, 0, 0);
  EXPECT_LT(sim.wait(s), 1e-3);  // sender long gone
  EXPECT_GE(sim.wait(r), 1.0);
}

TEST(MsgQueue, FifoMatchingPerTag) {
  MsgQueueSim sim(simple_net(2), 2);
  const int s1 = sim.isend(0, 1, 0, 8);
  sim.compute(0, 0.5);
  const int s2 = sim.isend(0, 1, 0, 8);
  const int r1 = sim.irecv(1, 0, 0);
  const int r2 = sim.irecv(1, 0, 0);
  // First recv matches the first send (posted at t=0) and completes well
  // before the second send was even posted; the second completes after.
  const double t1 = sim.wait(r1);
  const double t2 = sim.wait(r2);
  EXPECT_LT(t1, 0.5);
  EXPECT_GE(t2, 0.5);
  sim.wait(s1);
  sim.wait(s2);
}

TEST(MsgQueue, UnmatchedWaitIsDeadlock) {
  MsgQueueSim sim(simple_net(2), 2);
  const int r = sim.irecv(1, 0, 0);
  EXPECT_THROW(sim.wait(r), Error);
}

TEST(MsgQueue, WaitAllDrainsEverything) {
  MsgQueueSim sim(simple_net(4), 4);
  for (int r = 1; r < 4; ++r) {
    sim.isend(0, r, r, 256);
    sim.irecv(r, 0, r);
  }
  sim.wait_all();
  EXPECT_EQ(sim.pending(), 0);
  for (int r = 1; r < 4; ++r) EXPECT_GT(sim.clock(r), 0.0);
}

TEST(MsgQueue, AgreesWithAnalyticOrderOfMagnitude) {
  // Cross-check: a single eager message should cost about the analytic
  // pt2pt time.
  MsgQueueSim sim(simple_net(2), 2);
  const NetCost net = simple_net(2);
  const int s = sim.isend(0, 1, 0, 4096);
  const int r = sim.irecv(1, 0, 0);
  sim.wait(s);
  const double t = sim.wait(r);
  EXPECT_NEAR(t, net.pt2pt(0, 1, 4096), 1e-9);
}

}  // namespace
}  // namespace v2d::mpisim
