/// \file test_perfmon.cpp
/// \brief Unit tests for the PAPI-like counters, TAU-style profiler and
/// perf-stat formatter.

#include <gtest/gtest.h>

#include "perfmon/papi.hpp"
#include "perfmon/perf_stat.hpp"
#include "perfmon/profiler.hpp"
#include "perfmon/timer.hpp"

namespace v2d::perfmon {
namespace {

sim::CostLedger make_ledger(double cycles, std::uint64_t fma_lanes) {
  sim::CostLedger l;
  sim::CostBreakdown cost;
  cost.compute_cycles = cycles;
  sim::KernelCounts c;
  c.record(sim::OpClass::FlopFma, 8, fma_lanes / 8);
  c.record(sim::OpClass::LoadContig, 8, 4);
  c.bytes_read = 256;
  c.bytes_written = 128;
  l.add_kernel("k", c, cost);
  return l;
}

TEST(Papi, ReadCounters) {
  const auto v = read_counters(make_ledger(1000.0, 80));
  EXPECT_EQ(v[static_cast<std::size_t>(Event::TotalCycles)], 1000u);
  EXPECT_EQ(v[static_cast<std::size_t>(Event::FpOps)], 160u);  // FMA x2
  EXPECT_EQ(v[static_cast<std::size_t>(Event::LoadStoreInstr)], 4u);
  EXPECT_EQ(v[static_cast<std::size_t>(Event::BytesRead)], 256u);
}

TEST(Papi, EventSetDeltas) {
  sim::CostLedger l = make_ledger(1000.0, 80);
  EventSet es;
  es.start(l);
  // More work lands in the ledger.
  sim::CostBreakdown cost;
  cost.compute_cycles = 500.0;
  l.add_kernel("k2", sim::KernelCounts{}, cost);
  const auto v = es.stop(l);
  EXPECT_EQ(v[static_cast<std::size_t>(Event::TotalCycles)], 500u);
  EXPECT_EQ(v[static_cast<std::size_t>(Event::FpOps)], 0u);
}

TEST(Papi, DoubleStartRejected) {
  const sim::CostLedger l;
  EventSet es;
  es.start(l);
  EXPECT_THROW(es.start(l), Error);
}

TEST(Papi, StopWithoutStartRejected) {
  const sim::CostLedger l;
  EventSet es;
  EXPECT_THROW(es.stop(l), Error);
}

TEST(Papi, CyclesToSeconds) {
  EXPECT_DOUBLE_EQ(cycles_to_seconds(1800, 1.8e9), 1e-6);
  EXPECT_THROW(cycles_to_seconds(1, 0.0), Error);
}

TEST(Papi, EventNames) {
  EXPECT_STREQ(event_name(Event::TotalCycles), "PAPI_TOT_CYC");
  EXPECT_STREQ(event_name(Event::FpOps), "PAPI_DP_OPS");
}

TEST(ProfilerTest, CallPathTree) {
  Profiler p;
  p.enter("step");
  p.enter("solve");
  p.exit(2.0);
  p.enter("solve");
  p.exit(3.0);
  p.exit(6.0);
  const auto flat = p.flat();
  ASSERT_EQ(flat.size(), 2u);
  // Sorted by exclusive: solve (5.0) before step (1.0 exclusive).
  EXPECT_EQ(flat[0].path, "step => solve");
  EXPECT_DOUBLE_EQ(flat[0].inclusive_s, 5.0);
  EXPECT_EQ(flat[0].calls, 2u);
  EXPECT_DOUBLE_EQ(flat[1].exclusive_s, 1.0);
}

TEST(ProfilerTest, PercentagesSumToHundred) {
  Profiler p;
  p.enter("a");
  p.exit(1.0);
  p.enter("b");
  p.exit(3.0);
  const auto flat = p.flat();
  double pct = 0.0;
  for (const auto& e : flat) pct += e.exclusive_pct;
  EXPECT_NEAR(pct, 100.0, 1e-9);
}

TEST(ProfilerTest, UnbalancedExitThrows) {
  Profiler p;
  EXPECT_THROW(p.exit(1.0), Error);
}

TEST(ProfilerTest, ReportContainsHeader) {
  Profiler p;
  p.enter("matvec");
  p.exit(1.0);
  const std::string r = p.report();
  EXPECT_NE(r.find("%Time"), std::string::npos);
  EXPECT_NE(r.find("matvec"), std::string::npos);
}

TEST(ProfilerTest, ClearResets) {
  Profiler p;
  p.enter("x");
  p.exit(1.0);
  p.clear();
  EXPECT_TRUE(p.flat().empty());
  EXPECT_FALSE(p.open());
}

TEST(PerfStat, FormatsLikePerf) {
  PerfStatResult r;
  r.command = "v2d --steps 100";
  r.duration_seconds = 1.5;
  r.cpu_cycles = 2700000000ull;
  const std::string s = format_perf_stat(r);
  EXPECT_NE(s.find("Performance counter stats for 'v2d --steps 100'"),
            std::string::npos);
  EXPECT_NE(s.find("duration_time"), std::string::npos);
  EXPECT_NE(s.find("2,700,000,000"), std::string::npos);
  EXPECT_NE(s.find("1.500000000 seconds"), std::string::npos);
}

TEST(Timers, WallTimerMeasuresSomething) {
  WallTimer t;
  t.start();
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GE(t.stop(), 0.0);
  EXPECT_THROW(t.stop(), Error);  // not running anymore
}

TEST(Timers, SimStopwatch) {
  SimStopwatch s;
  s.mark(10.0);
  EXPECT_DOUBLE_EQ(s.elapsed(12.5), 2.5);
  EXPECT_THROW(s.elapsed(9.0), Error);  // clock ran backwards
}

}  // namespace
}  // namespace v2d::perfmon
