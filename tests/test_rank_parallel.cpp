/// \file test_rank_parallel.cpp
/// \brief The rank-parallel host execution engine: thread-pool semantics
/// and the bit-identical-to-serial contract.
///
/// Ranks own disjoint tiles and disjoint clock/ledger slots, so executing
/// them concurrently must change *nothing* observable: fields, per-rank
/// ledgers and simulated clocks are compared exactly (==, not near)
/// between --host-threads 1 and 4+ runs, in both VLA exec modes.  The
/// same contract covers --host-sched: the dependency-scheduled graph
/// executor (HostSchedTest) must match the barrier pool and the serial
/// path bit-for-bit across vla-exec backends, fuse modes, a hydro
/// scenario and a mixed farm.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "core/v2d.hpp"
#include "farm/farm.hpp"
#include "grid/decomp.hpp"
#include "grid/grid2d.hpp"
#include "linalg/dist_vector.hpp"
#include "linalg/exec_context.hpp"
#include "sim_capture.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace v2d {
namespace {

using testutil::SimCapture;

// --- thread pool -------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(1000, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  int order_ok = 1;
  int last = -1;
  pool.run(16, [&](int i) {
    if (i != last + 1) order_ok = 0;
    last = i;
  });
  EXPECT_EQ(order_ok, 1);  // serial fast path keeps loop order
}

TEST(ThreadPoolTest, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run(100,
                        [&](int i) {
                          if (i == 37) throw Error("task failure");
                        }),
               Error);
  // The pool survives a failed region.
  std::atomic<int> count{0};
  pool.run(64, [&](int) { count++; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, NestedRunExecutesInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16);
  pool.run(4, [&](int outer) {
    pool.run(4, [&](int inner) {
      hits[static_cast<std::size_t>(4 * outer + inner)]++;
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SetHostThreadsResizesGlobalPool) {
  set_host_threads(3);
  EXPECT_EQ(host_threads(), 3);
  set_host_threads(0);  // restore hardware-concurrency default
  EXPECT_GE(host_threads(), 1);
}

// --- bit-identical contract ---------------------------------------------------

/// Ganged inner products accumulate per-rank partials merged in rank
/// order, so the value cannot depend on the host-thread count.
TEST(RankParallelTest, DotGangedInvariantUnderThreadCount) {
  const grid::Grid2D g(48, 24, -1.0, 1.0, -0.5, 0.5);
  const grid::Decomposition d(g, mpisim::CartTopology(4, 2));
  linalg::DistVector x(g, d, 2), y(g, d, 2);
  Rng rng(42);
  for (int j = 0; j < g.nx2(); ++j) {
    for (int i = 0; i < g.nx1(); ++i) {
      for (int s = 0; s < 2; ++s) {
        x.field().gset(s, i, j, rng.uniform(-1.0, 1.0));
        y.field().gset(s, i, j, rng.uniform(-1.0, 1.0));
      }
    }
  }
  std::vector<double> reference;
  for (const int threads : {1, 4, 7}) {
    set_host_threads(threads);
    linalg::ExecContext ctx(vla::VectorArch(512), nullptr,
                            vla::VlaExecMode::Native);
    const linalg::DistVector::DotPair pairs[2] = {{&x, &y}, {&x, &x}};
    const auto out = linalg::DistVector::dot_ganged(
        ctx, std::span<const linalg::DistVector::DotPair>(pairs, 2));
    if (reference.empty()) {
      reference = out;
    } else {
      ASSERT_EQ(out.size(), reference.size());
      for (std::size_t k = 0; k < out.size(); ++k)
        EXPECT_EQ(out[k], reference[k]) << "threads=" << threads;
    }
  }
  set_host_threads(0);
}

/// The 16-rank radiation run every identity test below is built from.
core::RunConfig pulse_config(int host_threads, const std::string& vla_exec,
                             int steps) {
  core::RunConfig cfg;
  cfg.nx1 = 64;
  cfg.nx2 = 32;
  cfg.ns = 2;
  cfg.steps = steps;
  cfg.dt = 0.05;
  cfg.nprx1 = 4;
  cfg.nprx2 = 4;  // 16 simulated ranks
  cfg.preconditioner = "spai0";
  cfg.compilers = {"cray", "gnu"};
  cfg.vla_exec = vla_exec;
  cfg.host_threads = host_threads;
  return cfg;
}

SimCapture run_config(const core::RunConfig& cfg) {
  core::Simulation sim(cfg);
  sim.run();
  const SimCapture out = testutil::capture(sim);
  set_host_threads(0);
  return out;
}

/// The acceptance criterion: a radiation run on 16 simulated ranks with
/// --host-threads 1 vs 4+ produces identical field results, identical
/// per-rank ledgers and identical simulated clocks.
TEST(RankParallelTest, RadiationRunBitIdenticalAcrossHostThreads) {
  const SimCapture serial = run_config(pulse_config(1, "native", 2));
  const SimCapture par4 = run_config(pulse_config(4, "native", 2));
  testutil::expect_captures_identical(serial, par4, "native@4");
  const SimCapture par_hw = run_config(pulse_config(0, "native", 2));
  testutil::expect_captures_identical(serial, par_hw, "native@hw");
}

TEST(RankParallelTest, InterpretModeBitIdenticalAcrossHostThreads) {
  const SimCapture serial = run_config(pulse_config(1, "interpret", 1));
  const SimCapture par = run_config(pulse_config(4, "interpret", 1));
  testutil::expect_captures_identical(serial, par, "interpret@4");
}

// --- host scheduler (--host-sched graph) --------------------------------------

/// The graph scheduler's acceptance criterion: dependency-scheduled
/// execution with halo/compute overlap matches both the barrier pool and
/// the serial path bit-for-bit, in both VLA exec backends.
TEST(HostSchedTest, GraphBitIdenticalToBarrierAndSerial) {
  for (const char* mode : {"native", "interpret"}) {
    const std::string vla_exec(mode);
    const int steps = vla_exec == "native" ? 2 : 1;
    const SimCapture ref = run_config(pulse_config(1, vla_exec, steps));

    core::RunConfig graph1 = pulse_config(1, vla_exec, steps);
    graph1.host_sched = "graph";
    testutil::expect_captures_identical(ref, run_config(graph1),
                                        vla_exec + "+graph@1");

    core::RunConfig graph4 = pulse_config(4, vla_exec, steps);
    graph4.host_sched = "graph";
    testutil::expect_captures_identical(ref, run_config(graph4),
                                        vla_exec + "+graph@4");
  }
}

/// Fused kernels reshape the per-iteration task graph (fewer, bigger
/// nodes; planner groups under --fuse plan): every fuse mode must stay
/// bit-identical between schedulers.
TEST(HostSchedTest, FuseModesBitIdenticalUnderGraph) {
  for (const char* fuse : {"off", "on", "plan"}) {
    core::RunConfig barrier = pulse_config(1, "native", 2);
    barrier.nx1 = 48;
    barrier.nx2 = 24;
    barrier.nprx1 = 2;
    barrier.nprx2 = 2;
    barrier.fuse = fuse;
    core::RunConfig graph = barrier;
    graph.host_threads = 4;
    graph.host_sched = "graph";
    testutil::expect_captures_identical(
        run_config(barrier), run_config(graph),
        std::string("fuse=") + fuse + "+graph@4");
  }
}

/// Wave 2 pipelines reductions past the dot joins: per-rank partial
/// tasks feed one rank-ordered compensated combine, and only the
/// scalar's consumer waits on it.  Classic (unganged) BiCGSTAB dots take
/// the same path as the ganged reductions and must stay bit-identical —
/// fields, per-profile clocks and full ledgers — in both VLA backends.
TEST(HostSchedTest, ClassicDotsBitIdenticalUnderGraph) {
  for (const char* mode : {"native", "interpret"}) {
    const std::string vla_exec(mode);
    core::RunConfig barrier = pulse_config(1, vla_exec, 1);
    barrier.nx1 = 48;
    barrier.nx2 = 24;
    barrier.nprx1 = 2;
    barrier.nprx2 = 2;
    barrier.ganged = false;
    core::RunConfig graph = barrier;
    graph.host_threads = 4;
    graph.host_sched = "graph";
    testutil::expect_captures_identical(run_config(barrier), run_config(graph),
                                        vla_exec + "+classic+graph@4");
  }
}

/// MgPrecond::apply opens its own GraphRegion; inside the Krylov
/// solver's region it must join the outer session (region inside region)
/// rather than deadlock or double-install the scheduler hook.  The
/// V-cycle also exercises the overlapped corner-filling transfers and
/// the chained smoother stages.
TEST(HostSchedTest, MgPrecondRegionNestingBitIdenticalUnderGraph) {
  for (const char* fuse : {"off", "on"}) {
    core::RunConfig barrier = pulse_config(1, "native", 2);
    barrier.preconditioner = "mg";
    barrier.fuse = fuse;
    core::RunConfig graph = barrier;
    graph.host_threads = 4;
    graph.host_sched = "graph";
    testutil::expect_captures_identical(
        run_config(barrier), run_config(graph),
        std::string("mg+fuse=") + fuse + "+graph@4");
  }
}

/// Hydro sweeps pipeline through the session (the x1 sweep's exchange is
/// the join the x2 sweep chains after); the coupled radhydro scenario
/// pins field, clock and ledger identity for that path.
TEST(HostSchedTest, HydroScenarioBitIdenticalUnderGraph) {
  core::RunConfig barrier;
  barrier.problem = "sedov-radhydro";
  barrier.nx1 = 32;
  barrier.nx2 = 32;
  barrier.steps = 2;
  barrier.nprx1 = 2;
  barrier.nprx2 = 2;
  barrier.host_threads = 1;
  core::RunConfig graph = barrier;
  graph.host_threads = 4;
  graph.host_sched = "graph";
  testutil::expect_captures_identical(run_config(barrier), run_config(graph),
                                      "sedov+graph@4");
}

/// A farm mixing graph- and barrier-scheduled jobs matches each job's
/// solo run exactly.  Inside a farmed pool task GraphRegion keeps inline
/// semantics, so this also pins that the scheduler knob never perturbs
/// results regardless of where the job lands.
TEST(HostSchedTest, MixedFarmBitIdenticalToSolo) {
  std::vector<farm::FarmJob> jobs;

  core::RunConfig pulse = pulse_config(1, "native", 2);
  pulse.nx1 = 48;
  pulse.nx2 = 24;
  pulse.nprx1 = 2;
  pulse.nprx2 = 2;
  jobs.push_back({"pulse-barrier", pulse});

  core::RunConfig pulse_graph = pulse;
  pulse_graph.host_sched = "graph";
  jobs.push_back({"pulse-graph", pulse_graph});

  core::RunConfig relax;
  relax.problem = "two-species-relax";
  relax.nx1 = 24;
  relax.nx2 = 24;
  relax.steps = 2;
  relax.fuse = "on";
  relax.host_sched = "graph";
  relax.host_threads = 1;
  jobs.push_back({"relax-graph-fused", relax});

  std::vector<SimCapture> solo;
  solo.reserve(jobs.size());
  for (const auto& j : jobs) solo.push_back(run_config(j.cfg));

  farm::FarmOptions opt;
  opt.host_threads = 3;
  std::vector<SimCapture> farmed(jobs.size());
  opt.on_job_complete = [&farmed](std::size_t i, core::Simulation& sim) {
    farmed[i] = testutil::capture(sim);
  };
  farm::FarmScheduler sched(opt);
  for (const auto& j : jobs) sched.add(j);
  const farm::FarmSummary sum = sched.run();
  set_host_threads(0);
  ASSERT_EQ(sum.failed, 0u);

  for (std::size_t i = 0; i < jobs.size(); ++i)
    testutil::expect_captures_identical(solo[i], farmed[i],
                                        jobs[i].name + "@farm");
}

}  // namespace
}  // namespace v2d
