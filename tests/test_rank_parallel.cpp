/// \file test_rank_parallel.cpp
/// \brief The rank-parallel host execution engine: thread-pool semantics
/// and the bit-identical-to-serial contract.
///
/// Ranks own disjoint tiles and disjoint clock/ledger slots, so executing
/// them concurrently must change *nothing* observable: fields, per-rank
/// ledgers and simulated clocks are compared exactly (==, not near)
/// between --host-threads 1 and 4+ runs, in both VLA exec modes.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/v2d.hpp"
#include "grid/decomp.hpp"
#include "grid/grid2d.hpp"
#include "linalg/dist_vector.hpp"
#include "linalg/exec_context.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace v2d {
namespace {

// --- thread pool -------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(1000, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  int order_ok = 1;
  int last = -1;
  pool.run(16, [&](int i) {
    if (i != last + 1) order_ok = 0;
    last = i;
  });
  EXPECT_EQ(order_ok, 1);  // serial fast path keeps loop order
}

TEST(ThreadPoolTest, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run(100,
                        [&](int i) {
                          if (i == 37) throw Error("task failure");
                        }),
               Error);
  // The pool survives a failed region.
  std::atomic<int> count{0};
  pool.run(64, [&](int) { count++; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, NestedRunExecutesInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16);
  pool.run(4, [&](int outer) {
    pool.run(4, [&](int inner) {
      hits[static_cast<std::size_t>(4 * outer + inner)]++;
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SetHostThreadsResizesGlobalPool) {
  set_host_threads(3);
  EXPECT_EQ(host_threads(), 3);
  set_host_threads(0);  // restore hardware-concurrency default
  EXPECT_GE(host_threads(), 1);
}

// --- bit-identical contract ---------------------------------------------------

/// Ganged inner products accumulate per-rank partials merged in rank
/// order, so the value cannot depend on the host-thread count.
TEST(RankParallelTest, DotGangedInvariantUnderThreadCount) {
  const grid::Grid2D g(48, 24, -1.0, 1.0, -0.5, 0.5);
  const grid::Decomposition d(g, mpisim::CartTopology(4, 2));
  linalg::DistVector x(g, d, 2), y(g, d, 2);
  Rng rng(42);
  for (int j = 0; j < g.nx2(); ++j) {
    for (int i = 0; i < g.nx1(); ++i) {
      for (int s = 0; s < 2; ++s) {
        x.field().gset(s, i, j, rng.uniform(-1.0, 1.0));
        y.field().gset(s, i, j, rng.uniform(-1.0, 1.0));
      }
    }
  }
  std::vector<double> reference;
  for (const int threads : {1, 4, 7}) {
    set_host_threads(threads);
    linalg::ExecContext ctx(vla::VectorArch(512), nullptr,
                            vla::VlaExecMode::Native);
    const linalg::DistVector::DotPair pairs[2] = {{&x, &y}, {&x, &x}};
    const auto out = linalg::DistVector::dot_ganged(
        ctx, std::span<const linalg::DistVector::DotPair>(pairs, 2));
    if (reference.empty()) {
      reference = out;
    } else {
      ASSERT_EQ(out.size(), reference.size());
      for (std::size_t k = 0; k < out.size(); ++k)
        EXPECT_EQ(out[k], reference[k]) << "threads=" << threads;
    }
  }
  set_host_threads(0);
}

struct RunCapture {
  std::vector<double> field;
  // Per profile, per rank.
  std::vector<std::vector<double>> clocks;
  std::vector<std::vector<sim::CostLedger>> ledgers;
};

RunCapture run_simulation(int host_threads, const std::string& vla_exec,
                          int steps) {
  core::RunConfig cfg;
  cfg.nx1 = 64;
  cfg.nx2 = 32;
  cfg.ns = 2;
  cfg.steps = steps;
  cfg.dt = 0.05;
  cfg.nprx1 = 4;
  cfg.nprx2 = 4;  // 16 simulated ranks
  cfg.preconditioner = "spai0";
  cfg.compilers = {"cray", "gnu"};
  cfg.vla_exec = vla_exec;
  cfg.host_threads = host_threads;
  core::Simulation sim(cfg);
  sim.run();
  RunCapture out;
  out.field = sim.radiation().field().gather_global();
  const auto& em = sim.exec();
  out.clocks.resize(em.nprofiles());
  out.ledgers.resize(em.nprofiles());
  for (std::size_t p = 0; p < em.nprofiles(); ++p) {
    for (int r = 0; r < em.nranks(); ++r) {
      out.clocks[p].push_back(em.rank_time(p, r));
      out.ledgers[p].push_back(em.ledger(p, r));
    }
  }
  return out;
}

void expect_counts_equal(const sim::KernelCounts& a, const sim::KernelCounts& b,
                         const std::string& where) {
  for (std::size_t i = 0; i < sim::kNumOpClasses; ++i) {
    EXPECT_EQ(a.instr[i], b.instr[i]) << where << " instr[" << i << "]";
    EXPECT_EQ(a.lanes[i], b.lanes[i]) << where << " lanes[" << i << "]";
  }
  EXPECT_EQ(a.bytes_read, b.bytes_read) << where;
  EXPECT_EQ(a.bytes_written, b.bytes_written) << where;
  EXPECT_EQ(a.elements, b.elements) << where;
  EXPECT_EQ(a.calls, b.calls) << where;
}

void expect_ledgers_equal(const sim::CostLedger& a, const sim::CostLedger& b,
                          const std::string& where) {
  ASSERT_EQ(a.regions().size(), b.regions().size()) << where;
  auto ia = a.regions().begin();
  auto ib = b.regions().begin();
  for (; ia != a.regions().end(); ++ia, ++ib) {
    ASSERT_EQ(ia->first, ib->first) << where;
    const std::string at = where + "/" + ia->first;
    const sim::RegionCost& ra = ia->second;
    const sim::RegionCost& rb = ib->second;
    EXPECT_EQ(ra.compute_cycles, rb.compute_cycles) << at;
    EXPECT_EQ(ra.memory_cycles, rb.memory_cycles) << at;
    EXPECT_EQ(ra.overhead_cycles, rb.overhead_cycles) << at;
    EXPECT_EQ(ra.total_cycles, rb.total_cycles) << at;
    EXPECT_EQ(ra.comm_seconds, rb.comm_seconds) << at;
    EXPECT_EQ(ra.comm_messages, rb.comm_messages) << at;
    EXPECT_EQ(ra.comm_bytes, rb.comm_bytes) << at;
    expect_counts_equal(ra.counts, rb.counts, at);
  }
}

void expect_runs_identical(const RunCapture& serial, const RunCapture& par,
                           const std::string& label) {
  ASSERT_EQ(serial.field.size(), par.field.size());
  for (std::size_t i = 0; i < serial.field.size(); ++i)
    ASSERT_EQ(serial.field[i], par.field[i])
        << label << " field zone " << i;
  ASSERT_EQ(serial.clocks.size(), par.clocks.size());
  for (std::size_t p = 0; p < serial.clocks.size(); ++p) {
    for (std::size_t r = 0; r < serial.clocks[p].size(); ++r) {
      EXPECT_EQ(serial.clocks[p][r], par.clocks[p][r])
          << label << " profile " << p << " rank " << r;
      expect_ledgers_equal(serial.ledgers[p][r], par.ledgers[p][r],
                           label + " p" + std::to_string(p) + " r" +
                               std::to_string(r));
    }
  }
}

/// The acceptance criterion: a radiation run on 16 simulated ranks with
/// --host-threads 1 vs 4+ produces identical field results, identical
/// per-rank ledgers and identical simulated clocks.
TEST(RankParallelTest, RadiationRunBitIdenticalAcrossHostThreads) {
  const RunCapture serial = run_simulation(1, "native", 2);
  const RunCapture par4 = run_simulation(4, "native", 2);
  expect_runs_identical(serial, par4, "native@4");
  const RunCapture par_hw = run_simulation(0, "native", 2);
  expect_runs_identical(serial, par_hw, "native@hw");
  set_host_threads(0);
}

TEST(RankParallelTest, InterpretModeBitIdenticalAcrossHostThreads) {
  const RunCapture serial = run_simulation(1, "interpret", 1);
  const RunCapture par = run_simulation(4, "interpret", 1);
  expect_runs_identical(serial, par, "interpret@4");
  set_host_threads(0);
}

}  // namespace
}  // namespace v2d
