/// \file test_resilience.cpp
/// \brief The fault-injection and recovery suite.
///
/// Pins the chaos layer's contract: fault schedules are a pure function
/// of (seed, spec, job name); injected faults fire exactly once; guards
/// convert silent NaN contamination into structured errors naming the
/// step and field; the solver fallback chain recovers breakdowns without
/// perturbing pricing (bit-identity when the fallback re-runs the primary
/// kind); and an injected checkpoint I/O failure can tear only the
/// atomic writer's side file, never a finalized checkpoint.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "core/v2d.hpp"
#include "io/h5lite.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/guards.hpp"
#include "sim_capture.hpp"
#include "support/error.hpp"

namespace v2d {
namespace {

using resilience::FaultEvent;
using resilience::FaultInjector;
using resilience::FaultKind;
using resilience::FaultPlan;
using testutil::SimCapture;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

core::RunConfig small_config() {
  core::RunConfig cfg;
  cfg.problem = "gaussian-pulse";
  cfg.nx1 = 32;
  cfg.nx2 = 16;
  cfg.steps = 3;
  cfg.dt = 0.05;
  cfg.host_threads = 1;
  return cfg;
}

// --- fault plan --------------------------------------------------------------

TEST(FaultPlan, ParsesClausesAndRejectsGarbage) {
  const FaultPlan plan(42, "throw@5, breakdown:2; nan, io@1");
  const auto events = plan.schedule("job", 0, 10);
  int pinned_throw = 0, breakdowns = 0, nans = 0, pinned_io = 0;
  for (const FaultEvent& ev : events) {
    switch (ev.kind) {
      case FaultKind::StepException:
        EXPECT_EQ(ev.step, 5);
        ++pinned_throw;
        break;
      case FaultKind::SolverBreakdown:
        EXPECT_GE(ev.site, 0);
        EXPECT_LT(ev.site, 3);
        ++breakdowns;
        break;
      case FaultKind::NanContaminate:
        ++nans;
        break;
      case FaultKind::CheckpointIo:
        EXPECT_EQ(ev.step, 1);
        ++pinned_io;
        break;
    }
    EXPECT_GE(ev.step, 1);
    EXPECT_LE(ev.step, 10);
  }
  EXPECT_EQ(pinned_throw, 1);
  EXPECT_EQ(breakdowns, 2);
  EXPECT_EQ(nans, 1);
  EXPECT_EQ(pinned_io, 1);

  EXPECT_THROW(FaultPlan(1, "explode"), Error);
  EXPECT_THROW(FaultPlan(1, "throw@zero"), Error);
  EXPECT_THROW(FaultPlan(1, "nan:-2"), Error);
  EXPECT_THROW(FaultPlan(1, ", ,"), Error);
}

TEST(FaultPlan, ScheduleIsDeterministicPerSeedAndJob) {
  const FaultPlan plan(1234, "throw:3, breakdown:2");
  const auto a = plan.schedule("pulse", 0, 50);
  const auto b = FaultPlan(1234, "throw:3, breakdown:2").schedule("pulse", 0,
                                                                  50);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind));
    EXPECT_EQ(a[i].step, b[i].step);
    EXPECT_EQ(a[i].site, b[i].site);
  }

  auto steps_of = [](const std::vector<FaultEvent>& evs) {
    std::vector<int> out;
    for (const auto& ev : evs) out.push_back(ev.step);
    return out;
  };
  // Different job name or seed => a different (but still deterministic)
  // schedule; independent of everything else in the batch.
  EXPECT_NE(steps_of(a), steps_of(plan.schedule("hotspot", 0, 50)));
  EXPECT_NE(steps_of(a),
            steps_of(FaultPlan(99, "throw:3, breakdown:2")
                         .schedule("pulse", 0, 50)));
}

TEST(FaultPlan, InactiveAndOutOfRangeSchedulesAreEmpty) {
  EXPECT_FALSE(FaultPlan().active());
  EXPECT_TRUE(FaultPlan().schedule("job", 0, 100).empty());
  // Pinned beyond the job's step range: the job never reaches the fault.
  const FaultPlan plan(7, "throw@50");
  EXPECT_TRUE(plan.schedule("short-job", 0, 10).empty());
  // Restart base: faults at already-taken steps are dropped.
  EXPECT_TRUE(FaultPlan(7, "throw@3").schedule("job", 5, 10).empty());
}

TEST(FaultInjector, EventsFireExactlyOnce) {
  FaultInjector inj({{FaultKind::StepException, 4, 0, false},
                     {FaultKind::SolverBreakdown, 2, 1, false}});
  EXPECT_EQ(inj.pending(), 2u);
  EXPECT_FALSE(inj.take(FaultKind::StepException, 3));
  EXPECT_FALSE(inj.take(FaultKind::NanContaminate, 4));
  EXPECT_TRUE(inj.take(FaultKind::StepException, 4));
  EXPECT_FALSE(inj.take(FaultKind::StepException, 4));  // transient: fired
  EXPECT_FALSE(inj.take_breakdown(2, 0));  // wrong site
  EXPECT_TRUE(inj.take_breakdown(2, 1));
  EXPECT_FALSE(inj.take_breakdown(2, 1));
  EXPECT_EQ(inj.pending(), 0u);
}

// --- guards ------------------------------------------------------------------

TEST(Guards, ScalarAndDriftChecks) {
  EXPECT_NO_THROW(resilience::check_scalar_finite(1.0, "e", 1));
  EXPECT_THROW(resilience::check_scalar_finite(
                   std::numeric_limits<double>::quiet_NaN(), "e", 1),
               resilience::GuardError);
  EXPECT_NO_THROW(resilience::check_drift(1.001, 1.0, 0.01, "e", 2));
  try {
    resilience::check_drift(1.5, 1.0, 0.01, "total_energy", 7);
    FAIL() << "expected GuardError";
  } catch (const resilience::GuardError& e) {
    EXPECT_EQ(e.step(), 7);
    EXPECT_EQ(e.field(), "total_energy");
    EXPECT_NE(std::string(e.what()).find("drift"), std::string::npos);
  }
}

TEST(Guards, InjectedNanBecomesAStructuredError) {
  core::RunConfig cfg = small_config();
  cfg.guard = true;
  const FaultPlan plan(7, "nan@2");
  FaultInjector inj(plan.schedule(cfg.problem, 0, cfg.steps));
  core::Simulation sim(cfg);
  sim.set_fault_injector(&inj);
  try {
    sim.run();
    FAIL() << "expected GuardError";
  } catch (const resilience::GuardError& e) {
    EXPECT_EQ(e.step(), 2);
    EXPECT_EQ(e.field(), "radiation_energy");
    const std::string what = e.what();
    EXPECT_NE(what.find("numeric guard"), std::string::npos);
    EXPECT_NE(what.find("step 2"), std::string::npos);
    EXPECT_NE(what.find("zone (0, 0)"), std::string::npos);
  }
  EXPECT_EQ(inj.pending(), 0u);
  ASSERT_FALSE(sim.recovery().empty());
  EXPECT_EQ(sim.recovery().events.front().action, "injected-nan");
}

TEST(Guards, CleanRunPassesWithGuardsOn) {
  core::RunConfig cfg = small_config();
  cfg.guard = true;
  cfg.guard_drift = 0.5;  // generous: the pulse conserves well
  core::Simulation sim(cfg);
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(sim.steps_taken(), cfg.steps);
}

// --- solver fallback chain ---------------------------------------------------

/// The headline pricing invariant at the solver level: an injected
/// breakdown recovered by re-attempting the *same* preconditioner prices
/// exactly what the fault-free solve would have — the synthetic failure
/// commits no work, so the retry is the solve.
TEST(SolverFallback, SameKindFallbackIsBitIdenticalToFaultFree) {
  const core::RunConfig base = small_config();

  core::Simulation clean(base);
  clean.run();
  const SimCapture ref = testutil::capture(clean);

  core::RunConfig cfg = base;
  cfg.solver_fallbacks = {cfg.preconditioner};  // spai0 -> spai0
  const FaultPlan plan(21, "breakdown@2");
  FaultInjector inj(plan.schedule(cfg.problem, 0, cfg.steps));
  ASSERT_EQ(inj.events().size(), 1u);
  core::Simulation sim(cfg);
  sim.set_fault_injector(&inj);
  sim.run();

  testutil::expect_captures_identical(ref, testutil::capture(sim),
                                      "breakdown+same-kind-fallback");
  EXPECT_EQ(inj.pending(), 0u);
  ASSERT_GE(sim.recovery().events.size(), 2u);
  EXPECT_EQ(sim.recovery().events[0].action, "injected-breakdown");
  EXPECT_EQ(sim.recovery().events[1].action, "solver-fallback");
}

TEST(SolverFallback, DifferentKindRecoversAndIsRecorded) {
  core::RunConfig cfg = small_config();
  cfg.solver_fallbacks = {"jacobi"};
  const FaultPlan plan(21, "breakdown@2");
  FaultInjector inj(plan.schedule(cfg.problem, 0, cfg.steps));
  core::Simulation sim(cfg);
  sim.set_fault_injector(&inj);
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(sim.steps_taken(), cfg.steps);
  bool recovered = false;
  for (const auto& ev : sim.recovery().events)
    if (ev.action == "solver-fallback" &&
        ev.detail.find("'jacobi'") != std::string::npos)
      recovered = true;
  EXPECT_TRUE(recovered);
}

TEST(SolverFallback, BreakdownWithoutFallbackFailsTheStep) {
  core::RunConfig cfg = small_config();
  const FaultPlan plan(21, "breakdown@2");
  FaultInjector inj(plan.schedule(cfg.problem, 0, cfg.steps));
  core::Simulation sim(cfg);
  sim.set_fault_injector(&inj);
  try {
    sim.run();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("failed to converge at step 2"), std::string::npos);
    EXPECT_NE(what.find("injected breakdown"), std::string::npos);
  }
}

// --- atomic checkpoints + injected I/O faults --------------------------------

TEST(CheckpointIo, AtomicSaveLeavesNoSideFile) {
  const std::string path = temp_path("atomic.h5l");
  io::H5File file;
  file.root().set_attr("k", std::int64_t{1});
  file.save(path);
  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  // Overwrite through the same path: still atomic, still no residue.
  file.root().set_attr("k", std::int64_t{2});
  file.save(path);
  EXPECT_EQ(io::H5File::load(path).root().attr_i64("k"), 2);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

/// An injected crash mid-checkpoint tears only the side file; the real
/// path keeps the previous finalized checkpoint, so a retry restarts from
/// it instead of from scratch (or from poison).
TEST(CheckpointIo, InjectedWriteFailureCannotPoisonTheCheckpoint) {
  const std::string path = temp_path("torn.h5l");
  core::RunConfig cfg = small_config();
  cfg.checkpoint_path = path;
  cfg.checkpoint_every = 1;
  const FaultPlan plan(5, "io@2");
  FaultInjector inj(plan.schedule(cfg.problem, 0, cfg.steps));
  core::Simulation sim(cfg);
  sim.set_fault_injector(&inj);
  try {
    sim.run();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("injected checkpoint I/O failure"),
              std::string::npos);
  }

  // The step-1 checkpoint survives intact on the real path...
  const io::H5File good = io::H5File::load(path);
  EXPECT_EQ(good.root().attr_i64("step"), 1);
  // ...while the torn bytes sit in the side file, unreadable.
  EXPECT_TRUE(std::ifstream(path + ".tmp").good());
  EXPECT_THROW(io::H5File::load(path + ".tmp"), Error);

  // A later successful save replaces both atomically.
  core::Simulation again(cfg);
  again.restart(path);
  again.run();
  EXPECT_EQ(io::H5File::load(path).root().attr_i64("step"), cfg.steps);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(CheckpointIo, TruncatedFileOnTheRealPathIsRejectedLoudly) {
  const std::string path = temp_path("truncated.h5l");
  io::H5File file;
  file.root().set_attr("step", std::int64_t{3});
  file.save(path);
  // Simulate a pre-atomic torn write landing on the real path.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(io::H5File::load(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace v2d
