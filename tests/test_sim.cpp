/// \file test_sim.cpp
/// \brief Unit tests for the A64FX machine model, cache model, cost model
/// and ledger.

#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "support/error.hpp"
#include "sim/cost_model.hpp"
#include "sim/ledger.hpp"
#include "sim/machine.hpp"

namespace v2d::sim {
namespace {

// --- machine -----------------------------------------------------------------

TEST(Machine, A64fxShape) {
  const MachineSpec m = MachineSpec::a64fx();
  EXPECT_EQ(m.lanes_f64(), 8u);
  EXPECT_EQ(m.cores_per_node(), 48u);
  EXPECT_EQ(m.l1.capacity_bytes, 64u * 1024);
  EXPECT_EQ(m.l2.capacity_bytes, 8u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(m.freq_hz, 1.8e9);
}

TEST(Machine, BandwidthSharingMonotone) {
  const MachineSpec m = MachineSpec::a64fx();
  for (auto level : {MemLevel::L2, MemLevel::HBM}) {
    double prev = m.bytes_per_cycle(level, 1);
    for (std::uint32_t s = 2; s <= 12; ++s) {
      const double cur = m.bytes_per_cycle(level, s);
      EXPECT_LE(cur, prev + 1e-12) << mem_level_name(level) << " s=" << s;
      prev = cur;
    }
  }
}

TEST(Machine, L1IsPrivate) {
  const MachineSpec m = MachineSpec::a64fx();
  EXPECT_DOUBLE_EQ(m.bytes_per_cycle(MemLevel::L1, 1),
                   m.bytes_per_cycle(MemLevel::L1, 12));
}

TEST(Machine, HbmSingleCoreCap) {
  const MachineSpec m = MachineSpec::a64fx();
  // One core cannot pull the whole CMG's HBM bandwidth.
  const double one = m.bytes_per_cycle(MemLevel::HBM, 1);
  const double aggregate = m.hbm_bw_per_cmg / m.freq_hz;
  EXPECT_LT(one, aggregate);
}

TEST(Machine, OpClassNamesDistinct) {
  for (std::size_t i = 0; i < kNumOpClasses; ++i) {
    EXPECT_STRNE(op_class_name(static_cast<OpClass>(i)), "?");
  }
}

// --- kernel counts -------------------------------------------------------------

TEST(KernelCounts, FlopsCountsFmaTwice) {
  KernelCounts c;
  c.record(OpClass::FlopFma, 8, 2);  // 2 instr, 8 lanes each
  c.record(OpClass::FlopAdd, 8, 1);
  EXPECT_EQ(c.flops(), 2u * 16 + 8);
  EXPECT_EQ(c.total_instr(), 3u);
}

TEST(KernelCounts, Accumulate) {
  KernelCounts a, b;
  a.record(OpClass::LoadContig, 4);
  a.bytes_read = 32;
  b.record(OpClass::LoadContig, 8);
  b.bytes_read = 64;
  a += b;
  EXPECT_EQ(a.lanes[static_cast<std::size_t>(OpClass::LoadContig)], 12u);
  EXPECT_EQ(a.bytes_moved(), 96u);
}

// --- cache ----------------------------------------------------------------------

TEST(Cache, ColdMissThenHit) {
  SetAssocCache c(1024, 64, 2);
  EXPECT_FALSE(c.access(0, false));
  EXPECT_TRUE(c.access(8, false));  // same line
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, LruEviction) {
  // 2-way, 64B lines, 2 sets (256 B total).
  SetAssocCache c(256, 64, 2);
  // Three lines mapping to set 0: line addresses 0, 128, 256.
  c.access(0, false);
  c.access(128, false);
  c.access(0, false);    // touch 0 so 128 is LRU
  c.access(256, false);  // evicts 128
  EXPECT_TRUE(c.access(0, false));
  EXPECT_FALSE(c.access(128, false));  // was evicted
}

TEST(Cache, DirtyWritebackCounted) {
  SetAssocCache c(256, 64, 2);
  c.access(0, true);     // dirty
  c.access(128, false);
  c.access(256, false);  // evicts LRU (0, dirty) -> writeback
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, RangeTouchesEveryLine) {
  SetAssocCache c(4096, 64, 4);
  EXPECT_EQ(c.access_range(0, 640, false), 0u);  // 10 cold lines
  EXPECT_EQ(c.misses(), 10u);
  EXPECT_EQ(c.access_range(0, 640, false), 10u);  // all hits
}

TEST(Cache, WorkingSetBeyondCapacityThrashes) {
  SetAssocCache c(1024, 64, 2);
  // Stream 4 KiB repeatedly: hit rate must stay low.
  for (int rep = 0; rep < 4; ++rep) c.access_range(0, 4096, false);
  EXPECT_LT(c.hit_rate(), 0.1);
}

TEST(Cache, BadGeometryRejected) {
  EXPECT_THROW(SetAssocCache(1000, 60, 2), Error);  // non-pow2 line
}

TEST(CacheHierarchyTest, L2CatchesL1Misses) {
  CacheHierarchy h(MachineSpec::a64fx());
  h.access_range(0, 128 * 1024, false);  // 128 KiB: exceeds L1, fits L2
  h.access_range(0, 128 * 1024, false);
  EXPECT_GT(h.l2().hits(), 0u);
  EXPECT_EQ(h.memory_bytes(), h.l1().line_bytes() * h.l2().misses());
}

TEST(Classifier, PicksLevels) {
  const MachineSpec m = MachineSpec::a64fx();
  EXPECT_EQ(classify_working_set(16 * 1024, m, 1), MemLevel::L1);
  EXPECT_EQ(classify_working_set(1024 * 1024, m, 1), MemLevel::L2);
  EXPECT_EQ(classify_working_set(64ull * 1024 * 1024, m, 1), MemLevel::HBM);
}

TEST(Classifier, SharingShrinksL2Share) {
  const MachineSpec m = MachineSpec::a64fx();
  // 1 MiB fits an exclusive L2 but not a 12-way-shared one.
  EXPECT_EQ(classify_working_set(1024 * 1024, m, 1), MemLevel::L2);
  EXPECT_EQ(classify_working_set(1024 * 1024, m, 12), MemLevel::HBM);
}

// --- cost model -------------------------------------------------------------------

KernelCounts streaming_kernel(std::uint64_t n, unsigned lanes) {
  // daxpy-like: 2 loads, 1 fma, 1 store per element.
  KernelCounts c;
  const std::uint64_t strips = (n + lanes - 1) / lanes;
  c.record(OpClass::LoadContig, lanes, 2 * strips);
  c.record(OpClass::FlopFma, lanes, strips);
  c.record(OpClass::StoreContig, lanes, strips);
  c.record(OpClass::Branch, lanes, strips);
  c.bytes_read = 2 * n * 8;
  c.bytes_written = n * 8;
  c.elements = n;
  c.calls = 1;
  return c;
}

TEST(CostModel, SveBeatsScalarOnComputeBound) {
  const CostModel cm(MachineSpec::a64fx());
  const CodegenFactors f;
  const auto counts = streaming_kernel(4096, 8);
  const double sve = cm.compute_cycles(counts, ExecMode::SVE, f);
  const double scalar = cm.compute_cycles(counts, ExecMode::Scalar, f);
  EXPECT_LT(sve, scalar);
  EXPECT_GT(scalar / sve, 4.0);  // 8 lanes, port-limited
}

TEST(CostModel, PartialVectorizationInterpolates) {
  const CostModel cm(MachineSpec::a64fx());
  CodegenFactors full, half, none;
  half.vectorized_fraction = 0.5;
  none.vectorized_fraction = 0.0;
  const auto counts = streaming_kernel(4096, 8);
  const double t_full = cm.compute_cycles(counts, ExecMode::SVE, full);
  const double t_half = cm.compute_cycles(counts, ExecMode::SVE, half);
  const double t_none = cm.compute_cycles(counts, ExecMode::SVE, none);
  EXPECT_LT(t_full, t_half);
  EXPECT_LT(t_half, t_none);
  EXPECT_NEAR(t_half, 0.5 * (t_full + t_none), 1e-9);
}

TEST(CostModel, MemoryBoundWhenWorkingSetInHbm) {
  const CostModel cm(MachineSpec::a64fx());
  const CodegenFactors f;
  const auto counts = streaming_kernel(1 << 20, 8);
  const auto cost =
      cm.price(counts, ExecMode::SVE, f, 64ull * 1024 * 1024, 12);
  EXPECT_TRUE(cost.memory_bound());
  EXPECT_EQ(cost.level, MemLevel::HBM);
}

TEST(CostModel, FasterCacheLevelsCheaper) {
  const CostModel cm(MachineSpec::a64fx());
  const CodegenFactors f;
  const auto counts = streaming_kernel(1 << 14, 8);
  const auto l1 = cm.price(counts, ExecMode::SVE, f, 16 * 1024, 1);
  const auto l2 = cm.price(counts, ExecMode::SVE, f, 1024 * 1024, 1);
  const auto hbm = cm.price(counts, ExecMode::SVE, f, 64ull << 20, 1);
  EXPECT_LE(l1.total_cycles(), l2.total_cycles());
  EXPECT_LE(l2.total_cycles(), hbm.total_cycles());
}

TEST(CostModel, CpiScaleSlowsVectorSide) {
  const CostModel cm(MachineSpec::a64fx());
  CodegenFactors bad;
  bad.scale_all(3.0);
  const CodegenFactors good;
  const auto counts = streaming_kernel(4096, 8);
  EXPECT_GT(cm.compute_cycles(counts, ExecMode::SVE, bad),
            cm.compute_cycles(counts, ExecMode::SVE, good));
  // Scalar side is controlled by scalar_cpi_scale, not the vector scales.
  EXPECT_DOUBLE_EQ(cm.compute_cycles(counts, ExecMode::Scalar, bad),
                   cm.compute_cycles(counts, ExecMode::Scalar, good));
}

TEST(CostModel, BandwidthEfficiencyScalesMemorySide) {
  const CostModel cm(MachineSpec::a64fx());
  CodegenFactors f;
  const auto counts = streaming_kernel(1 << 18, 8);
  const auto base = cm.price(counts, ExecMode::SVE, f, 8 << 20, 1);
  f.bandwidth_efficiency = 0.5;
  const auto slow = cm.price(counts, ExecMode::SVE, f, 8 << 20, 1);
  EXPECT_NEAR(slow.memory_cycles, 2.0 * base.memory_cycles, 1e-6);
}

TEST(CostModel, SecondsUsesFrequency) {
  const CostModel cm(MachineSpec::a64fx());
  EXPECT_DOUBLE_EQ(cm.seconds(1.8e9), 1.0);
}

// --- ledger ------------------------------------------------------------------------

TEST(Ledger, AccumulatesRegions) {
  CostLedger l;
  CostBreakdown cost;
  cost.compute_cycles = 100;
  cost.memory_cycles = 50;
  cost.overhead_cycles = 10;
  KernelCounts c;
  c.record(OpClass::FlopFma, 8, 10);
  l.add_kernel("matvec", c, cost);
  l.add_kernel("matvec", c, cost);
  EXPECT_EQ(l.at("matvec").counts.flops(), 2u * 160);
  EXPECT_DOUBLE_EQ(l.at("matvec").total_cycles, 2 * 110.0);
  EXPECT_DOUBLE_EQ(l.total_cycles(), 220.0);
}

TEST(Ledger, CommBookkeeping) {
  CostLedger l;
  l.add_comm("halo", 1.5e-6, 4, 4096);
  l.add_comm("halo", 0.5e-6, 2, 1024);
  EXPECT_DOUBLE_EQ(l.at("halo").comm_seconds, 2.0e-6);
  EXPECT_EQ(l.at("halo").comm_messages, 6u);
  EXPECT_DOUBLE_EQ(l.total_comm_seconds(), 2.0e-6);
}

TEST(Ledger, MergeAndSort) {
  CostLedger a, b;
  CostBreakdown big, small;
  big.compute_cycles = 1000;
  small.compute_cycles = 1;
  a.add_kernel("big", KernelCounts{}, big);
  b.add_kernel("small", KernelCounts{}, small);
  a.merge(b);
  const auto order = a.by_cost();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "big");
}

TEST(Ledger, UnknownRegionThrows) {
  const CostLedger l;
  EXPECT_THROW(l.at("nope"), Error);
}

TEST(Ledger, TotalSecondsCombinesComputeAndComm) {
  CostLedger l;
  CostBreakdown cost;
  cost.compute_cycles = 1.8e9;  // 1 s at 1.8 GHz
  l.add_kernel("k", KernelCounts{}, cost);
  l.add_comm("c", 0.5, 1, 8);
  EXPECT_NEAR(l.total_seconds(1.8e9), 1.5, 1e-12);
}

}  // namespace
}  // namespace v2d::sim
