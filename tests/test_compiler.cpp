/// \file test_compiler.cpp
/// \brief Unit tests for the compiler codegen profiles.

#include <gtest/gtest.h>

#include "compiler/profile.hpp"
#include "support/error.hpp"

namespace v2d::compiler {
namespace {

TEST(Profiles, AllPresetsExist) {
  const auto all = all_profiles();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name().find("GNU"), 0u);
  EXPECT_EQ(all[2].mode(), sim::ExecMode::SVE);
  EXPECT_EQ(all[3].mode(), sim::ExecMode::Scalar);  // Cray no-opt
}

TEST(Profiles, MvapichVariantSharesCodegen) {
  const CodegenProfile a = gnu_11();
  const CodegenProfile b = find_profile("gnu-mvapich");
  // Same compiler: identical codegen factors per family.
  for (std::size_t i = 0; i < kNumKernelFamilies; ++i) {
    const auto f = static_cast<KernelFamily>(i);
    EXPECT_DOUBLE_EQ(a.factors(f).vectorized_fraction,
                     b.factors(f).vectorized_fraction);
    EXPECT_DOUBLE_EQ(a.factors(f).scalar_cpi_scale,
                     b.factors(f).scalar_cpi_scale);
  }
  // Different MPI stack.
  EXPECT_NE(a.mpi().name, b.mpi().name);
  EXPECT_EQ(b.mpi().name, "MVAPICH");
}

TEST(Profiles, FindByShortName) {
  EXPECT_EQ(find_profile("cray").mode(), sim::ExecMode::SVE);
  EXPECT_EQ(find_profile("cray-noopt").mode(), sim::ExecMode::Scalar);
  EXPECT_NO_THROW(find_profile("gnu"));
  EXPECT_NO_THROW(find_profile("fujitsu"));
  EXPECT_NO_THROW(find_profile("clang"));
  EXPECT_THROW(find_profile("icc"), Error);
}

TEST(Profiles, WithoutSveFlipsModeOnly) {
  const CodegenProfile p = cray_2103();
  const CodegenProfile q = p.without_sve();
  EXPECT_EQ(q.mode(), sim::ExecMode::Scalar);
  EXPECT_NE(q.name(), p.name());
  // Scalar codegen quality is preserved.
  EXPECT_DOUBLE_EQ(q.factors(KernelFamily::Daxpy).scalar_cpi_scale,
                   p.factors(KernelFamily::Daxpy).scalar_cpi_scale);
}

TEST(Profiles, FamilyOverridesApply) {
  const CodegenProfile p = cray_2103();
  // Physics is deliberately penalized relative to the hot kernels.
  EXPECT_LT(p.factors(KernelFamily::Physics).vectorized_fraction,
            p.factors(KernelFamily::Matvec).vectorized_fraction);
  EXPECT_GT(p.factors(KernelFamily::Physics).scale(sim::OpClass::FlopFma),
            p.factors(KernelFamily::Matvec).scale(sim::OpClass::FlopFma));
}

TEST(Profiles, SetFamilyMutates) {
  CodegenProfile p = gnu_11();
  sim::CodegenFactors f = p.factors(KernelFamily::Daxpy);
  f.vectorized_fraction = 0.123;
  p.set_family(KernelFamily::Daxpy, f);
  EXPECT_DOUBLE_EQ(p.factors(KernelFamily::Daxpy).vectorized_fraction, 0.123);
}

TEST(Profiles, MpiStacksDiffer) {
  EXPECT_NE(cray_2103().mpi().name, gnu_11().mpi().name);
  EXPECT_NE(fujitsu_45().mpi().name, cray_2103().mpi().name);
  // Fujitsu's stack scales best: smallest per-rank progress cost.
  EXPECT_LT(fujitsu_45().mpi().per_rank_overhead_s,
            cray_2103().mpi().per_rank_overhead_s);
  EXPECT_LT(fujitsu_45().mpi().per_rank_overhead_s,
            gnu_11().mpi().per_rank_overhead_s);
}

TEST(Profiles, FamilyNamesComplete) {
  for (std::size_t i = 0; i < kNumKernelFamilies; ++i) {
    EXPECT_STRNE(kernel_family_name(static_cast<KernelFamily>(i)), "?");
  }
}

TEST(Profiles, GnuVectorizesLessThanCray) {
  // GCC 11's SVE auto-vectorization lagged the vendor compilers.
  EXPECT_LT(gnu_11().factors(KernelFamily::Matvec).vectorized_fraction,
            cray_2103().factors(KernelFamily::Matvec).vectorized_fraction);
}

}  // namespace
}  // namespace v2d::compiler
