/// \file test_mg.cpp
/// \brief Tests for the geometric multigrid subsystem: banded LU, grid
/// hierarchy, transfer operators, Galerkin coarsening, V-cycle
/// convergence and the preconditioner factory integration.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/banded.hpp"
#include "linalg/cg.hpp"
#include "linalg/mg/hierarchy.hpp"
#include "linalg/mg/mg_precond.hpp"
#include "linalg/mg/transfer.hpp"
#include "linalg/precond.hpp"
#include "linalg/stencil_op.hpp"
#include "support/rng.hpp"

namespace v2d::linalg {
namespace {

struct Problem {
  grid::Grid2D g;
  grid::Decomposition d;
  StencilOperator A;

  Problem(int nx1, int nx2, int ns, int px1 = 1, int px2 = 1)
      : g(nx1, nx2, 0.0, 1.0, 0.0, 1.0),
        d(g, mpisim::CartTopology(px1, px2)),
        A(g, d, ns) {}
};

/// Zone-indexed pseudo-random value, identical for every tiling.
double zone_noise(std::uint64_t seed, int s, int i, int j) {
  Rng r(seed ^ (static_cast<std::uint64_t>(s) * 73856093u +
                static_cast<std::uint64_t>(i) * 19349663u +
                static_cast<std::uint64_t>(j) * 83492791u));
  return r.uniform();
}

/// Poisson-like SPD five-point operator with (optionally) variable
/// coefficients; boundary-facing entries folded (zeroed).
void fill_poisson(StencilOperator& A, double jitter = 0.0,
                  std::uint64_t seed = 7, double shift = 0.05) {
  const auto& dec = A.decomp();
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& e = dec.extent(r);
    for (int s = 0; s < A.ns(); ++s) {
      auto cc = A.cc().view(r, s), cw = A.cw().view(r, s),
           ce = A.ce().view(r, s), cs = A.cs().view(r, s),
           cn = A.cn().view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          const int gi = e.i0 + li, gj = e.j0 + lj;
          // Symmetric variable coefficients: face weights from the lower
          // zone of each face, so w and its mirror agree for every pair.
          auto face = [&](int fi, int fj, int axis) {
            return 1.0 + jitter * zone_noise(seed + axis, s, fi, fj);
          };
          const double ww = face(gi - 1, gj, 0), we = face(gi, gj, 0);
          const double ws = face(gi, gj - 1, 1), wn = face(gi, gj, 1);
          cw(li, lj) = -ww;
          ce(li, lj) = -we;
          cs(li, lj) = -ws;
          cn(li, lj) = -wn;
          cc(li, lj) = ww + we + ws + wn + shift;
        }
      }
    }
  }
  A.zero_boundary_coefficients();
}

void randomize(DistVector& v, std::uint64_t seed) {
  auto& f = v.field();
  for (int r = 0; r < f.decomp().nranks(); ++r) {
    const grid::TileExtent& e = f.decomp().extent(r);
    for (int s = 0; s < v.ns(); ++s) {
      auto view = f.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj)
        for (int li = 0; li < e.ni; ++li)
          view(li, lj) =
              2.0 * zone_noise(seed, s, e.i0 + li, e.j0 + lj) - 1.0;
    }
  }
}

// --- BandedLU ----------------------------------------------------------------

TEST(BandedLU, SolvesAgainstMultiply) {
  BandedMatrix m(12, {0, -1, 1, -4, 4});
  Rng rng(11);
  for (std::int64_t row = 0; row < 12; ++row) {
    for (const auto off : m.offsets()) {
      const std::int64_t col = row + off;
      if (col < 0 || col >= 12) continue;
      m.at(row, off) = off == 0 ? 6.0 + rng.uniform() : -rng.uniform();
    }
  }
  std::vector<double> x_ref(12), b(12);
  for (auto& v : x_ref) v = 2.0 * rng.uniform() - 1.0;
  m.multiply(x_ref, b);

  BandedLU lu(m);
  EXPECT_EQ(lu.lower_bandwidth(), 4);
  EXPECT_EQ(lu.upper_bandwidth(), 4);
  lu.solve(b);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_NEAR(b[i], x_ref[i], 1e-11) << "row " << i;
}

TEST(BandedLU, RejectsZeroPivot) {
  BandedMatrix m(3, {0, 1});
  m.at(0, 0) = 0.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  m.at(2, 0) = 1.0;
  EXPECT_THROW(BandedLU lu(m), Error);
}

// --- hierarchy ----------------------------------------------------------------

TEST(MgHierarchy, CoarsensToConfiguredSize) {
  Problem prob(64, 64, 1);
  fill_poisson(prob.A);
  ExecContext ctx;
  mg::MgOptions opt;
  opt.coarse_size = 8;
  mg::MgHierarchy h(ctx, prob.A, opt);
  // 64 -> 32 -> 16 -> 8.
  ASSERT_EQ(h.nlevels(), 4);
  EXPECT_EQ(h.level(3).grid->nx1(), 8);
  EXPECT_EQ(h.level(3).grid->nx2(), 8);
  EXPECT_GE(h.level(0).lambda_max, 1.0);
}

TEST(MgHierarchy, StopsAtOddTileBoundaries) {
  // 24/3 = 8 zones per tile in x1: 24 -> 12 (tiles 4) -> 6 (tiles 2)
  // -> 3 (tiles 1).  At 3 the tile boundaries are odd, so coarsening
  // stops even though coarse_size would allow one more level.
  Problem prob(24, 24, 1, 3, 1);
  fill_poisson(prob.A);
  ExecContext ctx;
  mg::MgOptions opt;
  opt.coarse_size = 1;
  mg::MgHierarchy h(ctx, prob.A, opt);
  ASSERT_EQ(h.nlevels(), 4);
  EXPECT_EQ(h.level(3).grid->nx1(), 3);
}

TEST(MgHierarchy, RejectsUncoarsenableLargeGrids) {
  // A 3-way split of 200 zones puts a tile boundary on an odd index, so
  // no coarsening is possible at all; with a large fine grid the "direct
  // solve of everything" fallback must be refused loudly.
  Problem prob(200, 100, 1, 3, 2);
  fill_poisson(prob.A);
  ExecContext ctx;
  try {
    mg::MgHierarchy h(ctx, prob.A, {});
    FAIL() << "expected v2d::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("even"), std::string::npos)
        << e.what();
  }
  // The same decomposition is fine when the caller raises the budget.
  mg::MgOptions opt;
  opt.max_direct_zones = 200 * 100;
  mg::MgHierarchy h2(ctx, prob.A, opt);
  EXPECT_EQ(h2.nlevels(), 1);
}

TEST(MgHierarchy, CoarseTilesAreParentAligned) {
  Problem prob(32, 16, 2, 2, 2);
  fill_poisson(prob.A);
  ExecContext ctx;
  mg::MgHierarchy h(ctx, prob.A, {});
  for (int l = 1; l < h.nlevels(); ++l) {
    const auto& fd = *h.level(l - 1).decomp;
    const auto& cd = *h.level(l).decomp;
    for (int r = 0; r < fd.nranks(); ++r) {
      EXPECT_EQ(cd.extent(r).i0 * 2, fd.extent(r).i0);
      EXPECT_EQ(cd.extent(r).j0 * 2, fd.extent(r).j0);
      EXPECT_EQ(cd.extent(r).ni * 2, fd.extent(r).ni);
      EXPECT_EQ(cd.extent(r).nj * 2, fd.extent(r).nj);
    }
  }
}

/// Galerkin coarse operators of a symmetric fine operator stay symmetric:
/// each west/east and south/north pair mirrors across the interface.
TEST(MgHierarchy, GalerkinCoarseOperatorIsSymmetric) {
  Problem prob(32, 32, 1);
  fill_poisson(prob.A, /*jitter=*/0.5);
  ExecContext ctx;
  mg::MgHierarchy h(ctx, prob.A, {});
  ASSERT_GE(h.nlevels(), 2);
  for (int l = 1; l < h.nlevels(); ++l) {
    const BandedMatrix M = h.level(l).op->assemble();
    const std::int64_t n = M.size();
    for (const auto off : M.offsets()) {
      if (off <= 0) continue;
      for (std::int64_t row = 0; row + off < n; ++row) {
        EXPECT_NEAR(M.get(row, off), M.get(row + off, -off), 1e-13)
            << "level " << l << " row " << row << " offset " << off;
      }
    }
  }
}

/// The Galerkin coarse operator must reproduce R·A·P exactly (with the
/// piecewise-constant transfer pair used for coarsening): acting on
/// constants, both sides reduce to the same row sums.
TEST(MgHierarchy, GalerkinPreservesRowSumsOfConstants) {
  Problem prob(16, 16, 1);
  fill_poisson(prob.A, 0.3);
  ExecContext ctx;
  mg::MgOptions opt;
  opt.coarse_size = 8;
  mg::MgHierarchy h(ctx, prob.A, opt);
  ASSERT_GE(h.nlevels(), 2);
  const mg::MgLevel& lc = h.level(1);

  // A_c · 1 on the coarse grid…
  DistVector ones_c(*lc.grid, *lc.decomp, 1), ac1(*lc.grid, *lc.decomp, 1);
  ones_c.fill(ctx, 1.0);
  lc.op->apply(ctx, ones_c, ac1);
  // …must equal (1/4)·Pᵀ A_f P · 1 = (1/4)·(2×2 sums of A_f · 1).
  DistVector ones_f(prob.g, prob.d, 1), af1(prob.g, prob.d, 1);
  ones_f.fill(ctx, 1.0);
  prob.A.apply(ctx, ones_f, af1);
  const auto coarse = ac1.field().gather_global();
  const auto fine = af1.field().gather_global();
  const int cn = lc.grid->nx1();
  for (int cj = 0; cj < lc.grid->nx2(); ++cj) {
    for (int ci = 0; ci < cn; ++ci) {
      const auto f = [&](int i, int j) {
        return fine[static_cast<std::size_t>(j * prob.g.nx1() + i)];
      };
      const double want = 0.25 * (f(2 * ci, 2 * cj) + f(2 * ci + 1, 2 * cj) +
                                  f(2 * ci, 2 * cj + 1) +
                                  f(2 * ci + 1, 2 * cj + 1));
      EXPECT_NEAR(coarse[static_cast<std::size_t>(cj * cn + ci)], want, 1e-12);
    }
  }
}

// --- transfers -----------------------------------------------------------------

/// Restriction is the exact scaled transpose of prolongation:
/// ⟨R x, y⟩_coarse = (1/4)·⟨x, P y⟩_fine for every x, y.
TEST(MgTransfer, RestrictionIsScaledTransposeOfProlongation) {
  for (const auto [px1, px2] : {std::pair{1, 1}, std::pair{2, 2},
                                std::pair{4, 1}}) {
    Problem prob(32, 16, 2, px1, px2);
    fill_poisson(prob.A);
    ExecContext ctx;
    mg::MgHierarchy h(ctx, prob.A, {});
    ASSERT_GE(h.nlevels(), 2);
    const mg::MgLevel& lc = h.level(1);

    DistVector xf(prob.g, prob.d, 2), rxf(*lc.grid, *lc.decomp, 2);
    DistVector yc(*lc.grid, *lc.decomp, 2), pyc(prob.g, prob.d, 2);
    randomize(xf, 101);
    randomize(yc, 202);

    mg::restrict_full_weighting(ctx, xf, rxf);
    pyc.fill(ctx, 0.0);
    mg::prolong_bilinear_add(ctx, yc, pyc);

    const double lhs = DistVector::dot(ctx, rxf, yc);
    const double rhs = DistVector::dot(ctx, xf, pyc);
    EXPECT_NEAR(lhs, 0.25 * rhs, 1e-12 * std::max(1.0, std::fabs(lhs)))
        << "tiling " << px1 << "x" << px2;
  }
}

/// Both transfers preserve constants away from the physical boundary
/// (interior rows sum to one), so smooth error survives the round trip.
TEST(MgTransfer, ConstantsSurviveInTheInterior) {
  Problem prob(16, 16, 1);
  fill_poisson(prob.A);
  ExecContext ctx;
  mg::MgHierarchy h(ctx, prob.A, {});
  ASSERT_GE(h.nlevels(), 2);
  const mg::MgLevel& lc = h.level(1);

  DistVector xf(prob.g, prob.d, 1), xc(*lc.grid, *lc.decomp, 1);
  xf.fill(ctx, 1.0);
  mg::restrict_full_weighting(ctx, xf, xc);
  // Interior coarse zones (two zones from the boundary) see weight one.
  const auto c = xc.field().gather_global();
  const int cn = lc.grid->nx1();
  for (int j = 1; j < lc.grid->nx2() - 1; ++j)
    for (int i = 1; i < cn - 1; ++i)
      EXPECT_NEAR(c[static_cast<std::size_t>(j * cn + i)], 1.0, 1e-13);

  DistVector yc(*lc.grid, *lc.decomp, 1), yf(prob.g, prob.d, 1);
  yc.fill(ctx, 1.0);
  yf.fill(ctx, 0.0);
  mg::prolong_bilinear_add(ctx, yc, yf);
  const auto f = yf.field().gather_global();
  for (int j = 2; j < prob.g.nx2() - 2; ++j)
    for (int i = 2; i < prob.g.nx1() - 2; ++i)
      EXPECT_NEAR(f[static_cast<std::size_t>(j * prob.g.nx1() + i)], 1.0,
                  1e-13);
}

/// The transfers must be tiling-independent: the same global fields in and
/// out for every decomposition (this exercises the corner-filled ghost
/// exchange the bilinear prolongation depends on).
TEST(MgTransfer, TilingIndependent) {
  std::vector<double> ref_r, ref_p;
  for (const auto [px1, px2] : {std::pair{1, 1}, std::pair{2, 2},
                                std::pair{4, 2}, std::pair{1, 4}}) {
    Problem prob(32, 32, 1, px1, px2);
    fill_poisson(prob.A);
    ExecContext ctx;
    mg::MgHierarchy h(ctx, prob.A, {});
    ASSERT_GE(h.nlevels(), 2);
    const mg::MgLevel& lc = h.level(1);

    DistVector xf(prob.g, prob.d, 1), xc(*lc.grid, *lc.decomp, 1);
    DistVector yc(*lc.grid, *lc.decomp, 1), yf(prob.g, prob.d, 1);
    randomize(xf, 303);
    randomize(yc, 404);
    mg::restrict_full_weighting(ctx, xf, xc);
    yf.fill(ctx, 0.0);
    mg::prolong_bilinear_add(ctx, yc, yf);

    const auto r = xc.field().gather_global();
    const auto p = yf.field().gather_global();
    if (ref_r.empty()) {
      ref_r = r;
      ref_p = p;
      continue;
    }
    for (std::size_t k = 0; k < r.size(); ++k)
      EXPECT_NEAR(r[k], ref_r[k], 1e-14) << "restrict, tiling " << px1 << "x"
                                         << px2;
    for (std::size_t k = 0; k < p.size(); ++k)
      EXPECT_NEAR(p[k], ref_p[k], 1e-14) << "prolong, tiling " << px1 << "x"
                                         << px2;
  }
}

// --- V-cycle convergence --------------------------------------------------------

double vcycle_contraction(Problem& prob, const mg::MgOptions& opt,
                          int cycles) {
  ExecContext ctx;
  mg::MgPrecond M(ctx, prob.A, opt);
  DistVector x(prob.g, prob.d, prob.A.ns()), b(prob.g, prob.d, prob.A.ns());
  DistVector r(prob.g, prob.d, prob.A.ns()), e(prob.g, prob.d, prob.A.ns());
  randomize(b, 505);
  x.fill(ctx, 0.0);
  r.copy_from(ctx, b);
  const double r0 = DistVector::norm2(ctx, r);
  double rk = r0;
  for (int k = 0; k < cycles; ++k) {
    M.apply(ctx, r, e);      // e ≈ A⁻¹ r
    x.daxpy(ctx, 1.0, e);    // Richardson update
    prob.A.apply(ctx, x, r);
    r.assign_sub(ctx, b, r);
    const double rn = DistVector::norm2(ctx, r);
    EXPECT_LT(rn, rk) << "cycle " << k << " did not reduce the residual";
    rk = rn;
  }
  return std::pow(rk / r0, 1.0 / cycles);
}

TEST(MgVcycle, TwoGridContractsPoissonResidual) {
  // Two-grid: one coarse level, exact coarse solve.
  Problem prob(32, 32, 1);
  fill_poisson(prob.A, 0.0, 7, /*shift=*/0.0);
  mg::MgOptions opt;
  opt.max_levels = 2;
  const double rate = vcycle_contraction(prob, opt, 4);
  // The piecewise-constant Galerkin coarse operator is deliberately on
  // the stiff side (safe under-correction, exact mass term): the rate is
  // ~0.3 rather than the ~0.1 of an exact-Galerkin two-grid cycle.
  EXPECT_LT(rate, 0.35) << "two-grid rate " << rate;
}

TEST(MgVcycle, DeepVcycleMatchesTwoGridBehaviour) {
  Problem prob(64, 64, 1);
  fill_poisson(prob.A, 0.0, 7, /*shift=*/0.0);
  mg::MgOptions opt;
  opt.coarse_size = 4;
  const double rate = vcycle_contraction(prob, opt, 4);
  EXPECT_LT(rate, 0.55) << "V-cycle rate " << rate;
}

TEST(MgVcycle, ChebyshevSmootherConverges) {
  Problem prob(32, 32, 1);
  fill_poisson(prob.A, 0.0, 7, /*shift=*/0.0);
  mg::MgOptions opt;
  opt.smoother = "chebyshev";
  const double rate = vcycle_contraction(prob, opt, 4);
  EXPECT_LT(rate, 0.5) << "Chebyshev V-cycle rate " << rate;
}

TEST(MgVcycle, VariableCoefficientsAndTwoSpecies) {
  Problem prob(32, 32, 2, 2, 2);
  fill_poisson(prob.A, /*jitter=*/0.8);
  const double rate = vcycle_contraction(prob, {}, 4);
  EXPECT_LT(rate, 0.35) << "variable-coefficient rate " << rate;
}

/// The V-cycle must produce the identical trajectory for every tiling —
/// the invariant the whole execution-pricing methodology rests on.
TEST(MgVcycle, TilingIndependentApplication) {
  std::vector<double> ref;
  for (const auto [px1, px2] :
       {std::pair{1, 1}, std::pair{2, 2}, std::pair{4, 1}}) {
    Problem prob(32, 32, 1, px1, px2);
    fill_poisson(prob.A, 0.4);
    ExecContext ctx;
    mg::MgPrecond M(ctx, prob.A, {});
    DistVector x(prob.g, prob.d, 1), y(prob.g, prob.d, 1);
    randomize(x, 606);
    M.apply(ctx, x, y);
    const auto out = y.field().gather_global();
    if (ref.empty()) {
      ref = out;
      continue;
    }
    for (std::size_t k = 0; k < out.size(); ++k)
      EXPECT_NEAR(out[k], ref[k], 1e-12)
          << "tiling " << px1 << "x" << px2 << " unknown " << k;
  }
}

/// The preconditioner must be a fixed linear operator: applying it twice
/// to the same vector gives identical results, even when a zero pre- or
/// post-smoothing count leaves a level's correction entirely to the
/// coarse grid (regression: skipped zero_guess initialization leaked the
/// previous application's state).
TEST(MgVcycle, ApplicationIsStateless) {
  Problem prob(32, 32, 1);
  fill_poisson(prob.A, 0.4);
  for (const auto [pre, post] :
       {std::pair{2, 2}, std::pair{0, 2}, std::pair{2, 0}}) {
    ExecContext ctx;
    mg::MgOptions opt;
    opt.nu_pre = pre;
    opt.nu_post = post;
    mg::MgPrecond M(ctx, prob.A, opt);
    DistVector x(prob.g, prob.d, 1), y1(prob.g, prob.d, 1),
        y2(prob.g, prob.d, 1);
    randomize(x, 909);
    M.apply(ctx, x, y1);
    M.apply(ctx, x, y2);
    const auto a = y1.field().gather_global();
    const auto b = y2.field().gather_global();
    for (std::size_t k = 0; k < a.size(); ++k)
      EXPECT_DOUBLE_EQ(a[k], b[k])
          << "nu=(" << pre << "," << post << ") unknown " << k;
  }
}

// --- preconditioner integration ---------------------------------------------------

TEST(MgPrecond, FactoryBuildsMg) {
  Problem prob(16, 16, 1);
  fill_poisson(prob.A);
  ExecContext ctx;
  const auto M = make_preconditioner("mg", ctx, prob.A);
  EXPECT_EQ(M->name(), "mg");
}

TEST(MgPrecond, CgConvergesFasterThanSpai0) {
  const int n = 64;
  Problem pa(n, n, 1), pb(n, n, 1);
  fill_poisson(pa.A, 0.3, 7, 0.0);
  fill_poisson(pb.A, 0.3, 7, 0.0);
  SolveOptions opt;
  opt.rel_tol = 1e-8;

  ExecContext ctx;
  DistVector xa(pa.g, pa.d, 1), ba(pa.g, pa.d, 1);
  randomize(ba, 707);
  xa.fill(ctx, 0.0);
  auto Mmg = make_preconditioner("mg", ctx, pa.A);
  CgSolver sa(pa.g, pa.d, 1);
  const SolveStats mg_stats = sa.solve(ctx, pa.A, *Mmg, xa, ba, opt);

  DistVector xb(pb.g, pb.d, 1), bb(pb.g, pb.d, 1);
  randomize(bb, 707);
  xb.fill(ctx, 0.0);
  auto Mspai = make_preconditioner("spai0", ctx, pb.A);
  CgSolver sb(pb.g, pb.d, 1);
  const SolveStats spai_stats = sb.solve(ctx, pb.A, *Mspai, xb, bb, opt);

  EXPECT_TRUE(mg_stats.converged) << mg_stats.stop_reason;
  EXPECT_TRUE(spai_stats.converged) << spai_stats.stop_reason;
  EXPECT_LT(mg_stats.iterations, spai_stats.iterations / 3)
      << "mg " << mg_stats.iterations << " vs spai0 "
      << spai_stats.iterations;
}

TEST(Cg, ReportsIndefiniteOperator) {
  // −Laplacian is negative definite: CG must stop with the distinct
  // indefinite-operator reason, not the generic breakdown.
  Problem prob(12, 12, 1);
  fill_poisson(prob.A);
  for (grid::DistField* f : {&prob.A.cc(), &prob.A.cw(), &prob.A.ce(),
                             &prob.A.cs(), &prob.A.cn()}) {
    for (int r = 0; r < prob.d.nranks(); ++r) {
      const grid::TileExtent& e = prob.d.extent(r);
      auto v = f->view(r, 0);
      for (int lj = 0; lj < e.nj; ++lj)
        for (int li = 0; li < e.ni; ++li) v(li, lj) = -v(li, lj);
    }
  }
  ExecContext ctx;
  DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
  randomize(b, 808);
  x.fill(ctx, 0.0);
  IdentityPrecond M;
  CgSolver solver(prob.g, prob.d, 1);
  const SolveStats stats = solver.solve(ctx, prob.A, M, x, b);
  EXPECT_FALSE(stats.converged);
  EXPECT_STREQ(stats.stop_reason, "indefinite operator");
}

}  // namespace
}  // namespace v2d::linalg
