/// \file test_linalg_solvers.cpp
/// \brief Tests for the stencil operator, banded matrix, preconditioners,
/// BiCGSTAB (classic & ganged) and CG.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/banded.hpp"
#include "linalg/bicgstab.hpp"
#include "linalg/cg.hpp"
#include "linalg/precond.hpp"
#include "linalg/stencil_op.hpp"
#include "support/rng.hpp"

namespace v2d::linalg {
namespace {

struct Problem {
  grid::Grid2D g;
  grid::Decomposition d;
  StencilOperator A;

  Problem(int nx1, int nx2, int ns, int px1 = 1, int px2 = 1)
      : g(nx1, nx2, 0.0, 1.0, 0.0, 1.0),
        d(g, mpisim::CartTopology(px1, px2)),
        A(g, d, ns) {}
};

/// Zone-indexed pseudo-random value: identical for every tiling, so tests
/// that compare decompositions see the same global problem.
double zone_noise(std::uint64_t seed, int s, int i, int j) {
  Rng r(seed ^ (static_cast<std::uint64_t>(s) * 73856093u +
                static_cast<std::uint64_t>(i) * 19349663u +
                static_cast<std::uint64_t>(j) * 83492791u));
  return r.uniform();
}

/// Diffusion-like diagonally dominant coefficients (nonsymmetric when
/// `skew` is nonzero).
void fill_operator(StencilOperator& A, Rng& seed_rng, double skew = 0.0) {
  const std::uint64_t seed = seed_rng.next_u64();
  const auto& dec = A.decomp();
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& e = dec.extent(r);
    for (int s = 0; s < A.ns(); ++s) {
      auto cc = A.cc().view(r, s), cw = A.cw().view(r, s),
           ce = A.ce().view(r, s), cs = A.cs().view(r, s),
           cn = A.cn().view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          const int gi = e.i0 + li, gj = e.j0 + lj;
          const double w = 0.5 + zone_noise(seed, s, gi, gj);
          cw(li, lj) = -w * (1.0 + skew * zone_noise(seed + 1, s, gi, gj));
          ce(li, lj) = -w;
          cs(li, lj) = -w * (1.0 - skew * zone_noise(seed + 2, s, gi, gj));
          cn(li, lj) = -w;
          cc(li, lj) = 4.5 * w + 0.5;
        }
      }
    }
  }
  A.zero_boundary_coefficients();
}

void randomize(DistVector& v, Rng& seed_rng) {
  const std::uint64_t seed = seed_rng.next_u64();
  auto& f = v.field();
  for (int r = 0; r < f.decomp().nranks(); ++r) {
    const grid::TileExtent& e = f.decomp().extent(r);
    for (int s = 0; s < v.ns(); ++s) {
      auto view = f.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj)
        for (int li = 0; li < e.ni; ++li)
          view(li, lj) =
              2.0 * zone_noise(seed, s, e.i0 + li, e.j0 + lj) - 1.0;
    }
  }
}

// --- banded matrix ---------------------------------------------------------

TEST(Banded, EntriesAndMultiply) {
  BandedMatrix m(5, {0, -1, 1});
  for (std::int64_t i = 0; i < 5; ++i) m.at(i, 0) = 2.0;
  for (std::int64_t i = 1; i < 5; ++i) m.at(i, -1) = -1.0;
  for (std::int64_t i = 0; i < 4; ++i) m.at(i, 1) = -1.0;
  std::vector<double> x = {1, 2, 3, 4, 5}, y(5);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2 * 1 - 2);          // tridiagonal row 0
  EXPECT_DOUBLE_EQ(y[2], -2 + 6 - 4);
  EXPECT_DOUBLE_EQ(y[4], -4 + 10);
  EXPECT_EQ(m.nnz(), 13);
}

TEST(Banded, OutOfBandRejected) {
  BandedMatrix m(10, {0, 2});
  EXPECT_THROW(m.at(0, 1), Error);
  EXPECT_THROW(m.at(9, 2), Error);  // column out of range
  EXPECT_DOUBLE_EQ(m.get(9, 2), 0.0);  // get() is forgiving
}

TEST(Banded, RenderShowsBands) {
  BandedMatrix m(4, {0, 1});
  for (std::int64_t i = 0; i < 4; ++i) m.at(i, 0) = 1.0;
  m.at(0, 1) = 1.0;
  const std::string s = m.render_block(4, 4);
  EXPECT_EQ(s.substr(0, 4), "**..");
}

TEST(Banded, PbmHeader) {
  BandedMatrix m(4, {0});
  m.at(0, 0) = 1.0;
  std::ostringstream os;
  m.write_pbm(os, 4, 4);
  EXPECT_EQ(os.str().substr(0, 8), "P1\n4 4\n1");
}

// --- stencil vs banded (the matrix-free equivalence the paper relies on) ----

class StencilVsBanded
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StencilVsBanded, MatrixFreeEqualsAssembled) {
  const auto [px1, px2] = GetParam();
  Problem prob(20, 12, 2, px1, px2);
  Rng rng(17);
  fill_operator(prob.A, rng, 0.3);
  DistVector x(prob.g, prob.d, 2), y(prob.g, prob.d, 2);
  randomize(x, rng);

  ExecContext ctx;
  prob.A.apply(ctx, x, y);
  const auto y_free = y.field().gather_global();

  const BandedMatrix M = prob.A.assemble();
  const auto x_flat = x.field().gather_global();
  std::vector<double> y_mat(x_flat.size());
  M.multiply(x_flat, y_mat);

  ASSERT_EQ(y_free.size(), y_mat.size());
  for (std::size_t k = 0; k < y_free.size(); ++k)
    EXPECT_NEAR(y_free[k], y_mat[k], 1e-13) << "unknown " << k;
}

INSTANTIATE_TEST_SUITE_P(Tilings, StencilVsBanded,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{4, 1},
                                           std::tuple{1, 4}, std::tuple{2, 3},
                                           std::tuple{5, 2}));

TEST(StencilOp, BandOffsetsMatchFig1) {
  Problem prob(200, 100, 2);
  Rng rng(1);
  fill_operator(prob.A, rng);
  const BandedMatrix M = prob.A.assemble();
  EXPECT_EQ(M.size(), 40000);
  EXPECT_EQ(M.offsets(), (std::vector<std::int64_t>{-200, -1, 0, 1, 200}));
}

TEST(StencilOp, CouplingAddsOuterBands) {
  Problem prob(10, 6, 2);
  prob.A.enable_coupling();
  Rng rng(2);
  fill_operator(prob.A, rng);
  prob.A.csp().fill(-0.25);
  const BandedMatrix M = prob.A.assemble();
  EXPECT_EQ(M.offsets(),
            (std::vector<std::int64_t>{-60, -10, -1, 0, 1, 10, 60}));
  // Coupled matrix-free product still matches assembly.
  DistVector x(prob.g, prob.d, 2), y(prob.g, prob.d, 2);
  randomize(x, rng);
  ExecContext ctx;
  prob.A.apply(ctx, x, y);
  const auto x_flat = x.field().gather_global();
  std::vector<double> y_mat(x_flat.size());
  M.multiply(x_flat, y_mat);
  const auto y_free = y.field().gather_global();
  for (std::size_t k = 0; k < y_free.size(); ++k)
    EXPECT_NEAR(y_free[k], y_mat[k], 1e-13);
}

// --- preconditioners ----------------------------------------------------------

double residual_reduction(Preconditioner& M, Problem& prob, Rng& rng) {
  // One Richardson step with M: how much does ‖I − MA‖ shrink a vector?
  DistVector x(prob.g, prob.d, prob.A.ns()), ax(prob.g, prob.d, prob.A.ns()),
      max(prob.g, prob.d, prob.A.ns());
  randomize(x, rng);
  ExecContext ctx;
  prob.A.apply(ctx, x, ax);
  M.apply(ctx, ax, max);  // M·A·x should approximate x
  max.daxpy(ctx, -1.0, x);
  return DistVector::norm2(ctx, max) / DistVector::norm2(ctx, x);
}

TEST(Precond, QualityOrdering) {
  Problem prob(16, 16, 1);
  Rng rng(23);
  fill_operator(prob.A, rng);
  ExecContext ctx;
  IdentityPrecond ident;
  JacobiPrecond jacobi(ctx, prob.A);
  Spai0Precond spai0(ctx, prob.A);
  SpaiPrecond spai1(ctx, prob.A);
  const double e_ident = residual_reduction(ident, prob, rng);
  const double e_jacobi = residual_reduction(jacobi, prob, rng);
  const double e_spai0 = residual_reduction(spai0, prob, rng);
  const double e_spai1 = residual_reduction(spai1, prob, rng);
  // Any real preconditioner beats identity; SPAI(1) beats SPAI(0).
  EXPECT_LT(e_jacobi, e_ident);
  EXPECT_LT(e_spai0, e_ident);
  EXPECT_LT(e_spai1, e_spai0);
}

TEST(Precond, FactoryNames) {
  Problem prob(8, 8, 1);
  Rng rng(3);
  fill_operator(prob.A, rng);
  ExecContext ctx;
  EXPECT_EQ(make_preconditioner("identity", ctx, prob.A)->name(), "identity");
  EXPECT_EQ(make_preconditioner("jacobi", ctx, prob.A)->name(), "jacobi");
  EXPECT_EQ(make_preconditioner("spai0", ctx, prob.A)->name(), "spai0");
  EXPECT_EQ(make_preconditioner("spai", ctx, prob.A)->name(), "spai");
  EXPECT_EQ(make_preconditioner("mg", ctx, prob.A)->name(), "mg");
  EXPECT_THROW(make_preconditioner("ilu", ctx, prob.A), Error);
}

TEST(Precond, FactoryUnknownNameListsCatalogue) {
  Problem prob(8, 8, 1);
  Rng rng(3);
  fill_operator(prob.A, rng);
  ExecContext ctx;
  try {
    make_preconditioner("ssor", ctx, prob.A);
    FAIL() << "expected v2d::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("ssor"), std::string::npos);
    EXPECT_NE(msg.find("mg"), std::string::npos) << msg;
  }
}

TEST(Precond, Spai0ColumnsMatchClosedForm) {
  // SPAI(0) column k minimizes ‖A·m_k·e_k − e_k‖₂ over scalars, whose
  // closed form is m_k = a_kk / Σ_i a_ik² (column norm from the assembled
  // matrix).  The built diagonal must match it zone for zone.
  Problem prob(10, 9, 1, 2, 1);
  Rng rng(71);
  fill_operator(prob.A, rng, /*skew=*/0.3);
  ExecContext ctx;
  Spai0Precond spai0(ctx, prob.A);
  const BandedMatrix A = prob.A.assemble();
  const std::int64_t n = A.size();
  const auto m = spai0.diagonal().gather_global();
  for (std::int64_t k = 0; k < n; ++k) {
    double col_norm2 = 0.0;
    for (const auto off : A.offsets()) {
      const std::int64_t row = k - off;  // rows whose band `off` hits col k
      if (row < 0 || row >= n) continue;
      const double a = A.get(row, off);
      col_norm2 += a * a;
    }
    const double expected = A.get(k, 0) / col_norm2;
    EXPECT_NEAR(m[static_cast<std::size_t>(k)], expected, 1e-13)
        << "column " << k;
  }
}

TEST(Precond, SpaiColumnsReduceFrobenius) {
  // ‖A·M − I‖ with SPAI(1) must beat Jacobi on the same operator.
  Problem prob(12, 10, 1);
  Rng rng(29);
  fill_operator(prob.A, rng);
  ExecContext ctx;
  SpaiPrecond spai(ctx, prob.A);
  JacobiPrecond jacobi(ctx, prob.A);
  const BandedMatrix A = prob.A.assemble();
  const BandedMatrix M = spai.stencil().assemble();
  const std::int64_t n = A.size();
  double frob_spai = 0.0, frob_jacobi = 0.0;
  std::vector<double> col(n), acol(n);
  for (std::int64_t k = 0; k < n; ++k) {
    // SPAI column.
    std::fill(col.begin(), col.end(), 0.0);
    for (const auto off : M.offsets()) {
      const std::int64_t row = k - off;
      if (row >= 0 && row < n) col[row] = M.get(row, off);
    }
    A.multiply(col, acol);
    acol[k] -= 1.0;
    for (double v : acol) frob_spai += v * v;
    // Jacobi column: e_k / a_kk.
    std::fill(col.begin(), col.end(), 0.0);
    col[k] = 1.0 / A.get(k, 0);
    A.multiply(col, acol);
    acol[k] -= 1.0;
    for (double v : acol) frob_jacobi += v * v;
  }
  EXPECT_LT(frob_spai, frob_jacobi);
}

// --- solvers ---------------------------------------------------------------------

struct SolverFixtureBase {
  static SolveStats run_bicgstab(Problem& prob, bool ganged,
                                 const std::string& precond, Rng& rng,
                                 std::vector<double>* solution = nullptr) {
    DistVector x(prob.g, prob.d, prob.A.ns()), b(prob.g, prob.d, prob.A.ns());
    randomize(b, rng);
    ExecContext ctx;
    x.fill(ctx, 0.0);
    auto M = make_preconditioner(precond, ctx, prob.A);
    BicgstabSolver solver(prob.g, prob.d, prob.A.ns());
    SolveOptions opt;
    opt.ganged = ganged;
    opt.rel_tol = 1e-10;
    const SolveStats stats = solver.solve(ctx, prob.A, *M, x, b, opt);
    if (solution) *solution = x.field().gather_global();
    // Verify against the assembled matrix: ‖Ax − b‖/‖b‖ small.
    const BandedMatrix A = prob.A.assemble();
    const auto xf = x.field().gather_global();
    const auto bf = b.field().gather_global();
    std::vector<double> ax(xf.size());
    A.multiply(xf, ax);
    double num = 0, den = 0;
    for (std::size_t i = 0; i < ax.size(); ++i) {
      num += (ax[i] - bf[i]) * (ax[i] - bf[i]);
      den += bf[i] * bf[i];
    }
    EXPECT_LT(std::sqrt(num / den), 1e-8);
    return stats;
  }
};

class BicgstabSweep : public ::testing::TestWithParam<std::tuple<bool, const char*>>,
                      public SolverFixtureBase {};

TEST_P(BicgstabSweep, SolvesNonsymmetricSystem) {
  const auto [ganged, precond] = GetParam();
  Problem prob(18, 14, 2);
  Rng rng(31);
  fill_operator(prob.A, rng, /*skew=*/0.4);
  const SolveStats stats = run_bicgstab(prob, ganged, precond, rng);
  EXPECT_TRUE(stats.converged) << stats.stop_reason;
  EXPECT_GT(stats.iterations, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, BicgstabSweep,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values("identity", "jacobi", "spai0",
                                         "spai")));

TEST(Bicgstab, GangedUsesFewerReductions) {
  Rng rng(37);
  Problem p1(16, 12, 1), p2(16, 12, 1);
  Rng rng1(41), rng2(41);
  fill_operator(p1.A, rng1, 0.2);
  fill_operator(p2.A, rng2, 0.2);
  const SolveStats classic =
      SolverFixtureBase::run_bicgstab(p1, false, "spai0", rng);
  Rng rng_b(37);
  const SolveStats ganged =
      SolverFixtureBase::run_bicgstab(p2, true, "spai0", rng_b);
  ASSERT_GT(classic.iterations, 0);
  ASSERT_GT(ganged.iterations, 0);
  const double classic_per_iter =
      static_cast<double>(classic.global_reductions) / classic.iterations;
  const double ganged_per_iter =
      static_cast<double>(ganged.global_reductions) / ganged.iterations;
  EXPECT_NEAR(classic_per_iter, 5.0, 1.0);
  EXPECT_NEAR(ganged_per_iter, 3.0, 1.0);
  EXPECT_LT(ganged_per_iter, classic_per_iter);
}

TEST(Bicgstab, PreconditioningReducesIterations) {
  Rng rng_a(43), rng_b(43);
  Problem pa(20, 16, 1), pb(20, 16, 1);
  Rng fa(47), fb(47);
  fill_operator(pa.A, fa);
  fill_operator(pb.A, fb);
  const SolveStats none = SolverFixtureBase::run_bicgstab(pa, true, "identity", rng_a);
  const SolveStats spai = SolverFixtureBase::run_bicgstab(pb, true, "spai", rng_b);
  EXPECT_LT(spai.iterations, none.iterations);
}

TEST(Bicgstab, ZeroRhsShortCircuits) {
  Problem prob(8, 8, 1);
  Rng rng(5);
  fill_operator(prob.A, rng);
  DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
  ExecContext ctx;
  randomize(x, rng);
  b.fill(ctx, 0.0);
  auto M = make_preconditioner("spai0", ctx, prob.A);
  BicgstabSolver solver(prob.g, prob.d, 1);
  const SolveStats stats = solver.solve(ctx, prob.A, *M, x, b);
  EXPECT_TRUE(stats.converged);
  EXPECT_STREQ(stats.stop_reason, "zero rhs");
  for (double v : x.field().gather_global()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Bicgstab, WarmStartConvergesFaster) {
  Rng rng(53);
  Problem prob(16, 12, 1);
  fill_operator(prob.A, rng);
  DistVector b(prob.g, prob.d, 1), x_cold(prob.g, prob.d, 1),
      x_warm(prob.g, prob.d, 1);
  randomize(b, rng);
  ExecContext ctx;
  x_cold.fill(ctx, 0.0);
  auto M = make_preconditioner("spai0", ctx, prob.A);
  BicgstabSolver solver(prob.g, prob.d, 1);
  const SolveStats cold = solver.solve(ctx, prob.A, *M, x_cold, b);
  x_warm.copy_from(ctx, x_cold);  // exact solution as the initial guess
  const SolveStats warm = solver.solve(ctx, prob.A, *M, x_warm, b);
  EXPECT_TRUE(cold.converged);
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(Cg, SolvesSymmetricSystem) {
  Problem prob(20, 14, 1);
  Rng rng(59);
  fill_operator(prob.A, rng, /*skew=*/0.0);  // symmetric
  DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
  randomize(b, rng);
  ExecContext ctx;
  x.fill(ctx, 0.0);
  auto M = make_preconditioner("jacobi", ctx, prob.A);
  CgSolver solver(prob.g, prob.d, 1);
  SolveOptions opt;
  opt.rel_tol = 1e-10;
  const SolveStats stats = solver.solve(ctx, prob.A, *M, x, b, opt);
  EXPECT_TRUE(stats.converged) << stats.stop_reason;
  const BandedMatrix A = prob.A.assemble();
  const auto xf = x.field().gather_global();
  const auto bf = b.field().gather_global();
  std::vector<double> ax(xf.size());
  A.multiply(xf, ax);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    num += (ax[i] - bf[i]) * (ax[i] - bf[i]);
    den += bf[i] * bf[i];
  }
  EXPECT_LT(std::sqrt(num / den), 1e-8);
}

TEST(Solvers, TrajectoryIsTilingIndependent) {
  // The dd-compensated reductions make iteration counts identical for
  // every NPRX1×NPRX2 (the property Table I depends on).
  int iters_ref = -1;
  for (const auto [px1, px2] :
       {std::pair{1, 1}, std::pair{4, 1}, std::pair{2, 2}, std::pair{1, 4}}) {
    Problem prob(16, 16, 2, px1, px2);
    Rng rng(61);
    fill_operator(prob.A, rng, 0.25);
    Rng rng_b(67);
    const SolveStats stats =
        SolverFixtureBase::run_bicgstab(prob, true, "spai0", rng_b);
    if (iters_ref < 0) iters_ref = stats.iterations;
    EXPECT_EQ(stats.iterations, iters_ref)
        << "tiling " << px1 << "x" << px2;
  }
}

TEST(SolverWorkspaceTest, LazySlotsAndSharingAcrossSolvers) {
  Problem prob(20, 14, 1);
  Rng rng(61);
  fill_operator(prob.A, rng, /*skew=*/0.0);  // symmetric: valid for CG too
  SolverWorkspace ws(prob.g, prob.d, 1);
  EXPECT_EQ(ws.allocated(), 0u);  // nothing materialized before a solve

  DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
  randomize(b, rng);
  ExecContext ctx;
  auto M = make_preconditioner("jacobi", ctx, prob.A);
  SolveOptions opt;
  opt.rel_tol = 1e-10;

  CgSolver cg(ws);
  x.fill(ctx, 0.0);
  EXPECT_TRUE(cg.solve(ctx, prob.A, *M, x, b, opt).converged);
  const std::size_t after_cg = ws.allocated();
  EXPECT_EQ(after_cg, 4u);  // CG draws exactly slots 0..3

  // A BiCGSTAB solve on the same shape reuses those four buffers and only
  // adds its own extras; a second solve allocates nothing new.
  BicgstabSolver bi(ws);
  x.fill(ctx, 0.0);
  EXPECT_TRUE(bi.solve(ctx, prob.A, *M, x, b, opt).converged);
  EXPECT_EQ(ws.allocated(), 8u);
  x.fill(ctx, 0.0);
  EXPECT_TRUE(bi.solve(ctx, prob.A, *M, x, b, opt).converged);
  EXPECT_EQ(ws.allocated(), 8u);
}

}  // namespace
}  // namespace v2d::linalg
