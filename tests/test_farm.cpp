/// \file test_farm.cpp
/// \brief The farm determinism suite: batched multi-scenario execution is
/// a pure host-throughput optimization.
///
/// K heterogeneous jobs — different problems, grids, decompositions,
/// vector lengths, compiler sets, --vla-exec modes and --fuse settings —
/// run solo and farmed, and everything observable is compared exactly:
/// gathered fields, per-profile per-rank simulated clocks, and full cost
/// ledgers.  Farm scheduling (wave interleaving, shared count/price
/// memos, pooled scrubbed scratch, host-thread count) must change *none*
/// of it.  Plus: a mid-farm checkpoint/restart round-trip, failure
/// isolation, shared-runtime observability, and the job-file parser.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/v2d.hpp"
#include "farm/farm.hpp"
#include "farm/job_file.hpp"
#include "sim_capture.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace v2d {
namespace {

using testutil::SimCapture;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

core::RunConfig pulse_config() {
  core::RunConfig cfg;
  cfg.problem = "gaussian-pulse";
  cfg.nx1 = 48;
  cfg.nx2 = 24;
  cfg.steps = 2;
  cfg.dt = 0.05;
  cfg.nprx1 = 2;
  cfg.nprx2 = 2;
  cfg.compilers = {"cray", "gnu"};
  cfg.host_threads = 1;
  return cfg;
}

/// The heterogeneous job set: every axis the farm must not perturb is
/// varied somewhere — problem, grid, decomposition, VL, profiles,
/// vla-exec backend, fuse mode.
std::vector<farm::FarmJob> heterogeneous_jobs() {
  std::vector<farm::FarmJob> jobs;

  jobs.push_back({"pulse-base", pulse_config()});

  core::RunConfig fused = pulse_config();
  fused.fuse = "on";
  jobs.push_back({"pulse-fused", fused});

  core::RunConfig vl256 = pulse_config();
  vl256.vector_bits = 256;
  vl256.compilers = {"fujitsu"};
  jobs.push_back({"pulse-vl256", vl256});

  core::RunConfig hotspot;
  hotspot.problem = "hotspot-absorber";
  hotspot.nx1 = 32;
  hotspot.nx2 = 32;
  hotspot.steps = 2;
  hotspot.dt = 0.02;
  hotspot.nprx1 = 2;
  hotspot.nprx2 = 1;
  hotspot.vla_exec = "interpret";
  hotspot.host_threads = 1;
  jobs.push_back({"hotspot-interp", hotspot});

  core::RunConfig relax;
  relax.problem = "two-species-relax";
  relax.nx1 = 24;
  relax.nx2 = 24;
  relax.steps = 3;
  relax.fuse = "on";
  relax.host_threads = 1;
  jobs.push_back({"relax-fused", relax});

  core::RunConfig sedov;
  sedov.problem = "sedov-radhydro";
  sedov.nx1 = 24;
  sedov.nx2 = 24;
  sedov.steps = 2;
  sedov.nprx1 = 1;
  sedov.nprx2 = 2;
  sedov.host_threads = 1;
  jobs.push_back({"sedov", sedov});

  return jobs;
}

SimCapture run_solo(const core::RunConfig& cfg) {
  core::Simulation sim(cfg);
  if (!cfg.restart_path.empty()) sim.restart(cfg.restart_path);
  sim.run();
  return testutil::capture(sim);
}

/// Farm the jobs and capture each completed session's exact state.
std::vector<SimCapture> run_farmed(const std::vector<farm::FarmJob>& jobs,
                                   int host_threads, int max_concurrent) {
  farm::FarmOptions opt;
  opt.host_threads = host_threads;
  opt.max_concurrent = max_concurrent;
  std::vector<SimCapture> caps(jobs.size());
  opt.on_job_complete = [&caps](std::size_t i, core::Simulation& sim) {
    caps[i] = testutil::capture(sim);
  };
  farm::FarmScheduler sched(opt);
  for (const auto& j : jobs) sched.add(j);
  const farm::FarmSummary sum = sched.run();
  set_host_threads(0);
  EXPECT_EQ(sum.failed, 0u);
  EXPECT_EQ(sum.jobs.size(), jobs.size());
  return caps;
}

/// The acceptance criterion: heterogeneous jobs farmed together are
/// bit-identical to running each alone — fields, ledgers, clocks — at
/// any host-thread count and residency cap.
TEST(FarmDeterminism, HeterogeneousJobsBitIdenticalToSolo) {
  const auto jobs = heterogeneous_jobs();
  std::vector<SimCapture> solo;
  solo.reserve(jobs.size());
  for (const auto& j : jobs) solo.push_back(run_solo(j.cfg));

  const auto farmed_narrow = run_farmed(jobs, /*host_threads=*/1,
                                        /*max_concurrent=*/2);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    testutil::expect_captures_identical(solo[i], farmed_narrow[i],
                                        jobs[i].name + "@t1c2");

  const auto farmed_wide = run_farmed(jobs, /*host_threads=*/3,
                                      /*max_concurrent=*/0);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    testutil::expect_captures_identical(solo[i], farmed_wide[i],
                                        jobs[i].name + "@t3all");
}

/// A checkpoint written mid-farm restarts — farmed again — into a state
/// bit-identical to an uninterrupted solo run with the same cadence.
TEST(FarmDeterminism, MidFarmCheckpointRestartRoundTrip) {
  const std::string mid = temp_path("farm_mid.h5l");
  const std::string ref_ck = temp_path("farm_ref.h5l");
  const std::string res_ck = temp_path("farm_res.h5l");

  // Uninterrupted solo reference: checkpoints at steps 2 and 4.
  core::RunConfig ref_cfg = pulse_config();
  ref_cfg.steps = 4;
  ref_cfg.checkpoint_path = ref_ck;
  ref_cfg.checkpoint_every = 2;
  const SimCapture ref = run_solo(ref_cfg);

  // Decoy job so both farm phases really interleave waves.
  core::RunConfig decoy;
  decoy.problem = "two-species-relax";
  decoy.nx1 = 16;
  decoy.nx2 = 16;
  decoy.steps = 3;
  decoy.host_threads = 1;

  // Farm phase 1: run the first half, checkpointing at step 2.
  core::RunConfig half = ref_cfg;
  half.steps = 2;
  half.checkpoint_path = mid;
  run_farmed({{"half", half}, {"decoy", decoy}}, 2, 0);

  // Farm phase 2: restart from the mid-farm checkpoint and finish.
  core::RunConfig rest = ref_cfg;
  rest.checkpoint_path = res_ck;
  rest.restart_path = mid;
  const auto caps = run_farmed({{"rest", rest}, {"decoy", decoy}}, 2, 0);
  testutil::expect_captures_identical(ref, caps[0], "restarted-in-farm");

  std::remove(mid.c_str());
  std::remove(ref_ck.c_str());
  std::remove(res_ck.c_str());
}

/// A failing job is retired with its error; the others finish normally.
TEST(FarmScheduling, FailedJobDoesNotSinkTheFarm) {
  core::RunConfig bad = pulse_config();
  bad.max_iterations = 1;  // cannot converge -> drive_step throws
  bad.rel_tol = 1e-14;
  core::RunConfig good = pulse_config();

  farm::FarmScheduler sched;
  sched.add({"bad", bad});
  sched.add({"good", good});
  const farm::FarmSummary sum = sched.run();
  set_host_threads(0);

  ASSERT_EQ(sum.jobs.size(), 2u);
  EXPECT_EQ(sum.failed, 1u);
  EXPECT_FALSE(sum.jobs[0].error.empty());
  EXPECT_NE(sum.jobs[0].error.find("converge"), std::string::npos);
  EXPECT_TRUE(sum.jobs[1].error.empty());
  EXPECT_EQ(sum.jobs[1].steps, good.steps);
}

/// Same-shape jobs actually share the warm runtime: the count memo and
/// price memo serve hits across sessions, and a residency cap of one
/// recycles a single pooled workspace through every job.
TEST(FarmScheduling, SharedRuntimeIsReusedAcrossJobs) {
  const core::RunConfig cfg = pulse_config();
  farm::FarmOptions opt;
  opt.host_threads = 1;
  opt.max_concurrent = 1;  // strictly sequential -> maximal reuse
  farm::FarmScheduler sched(opt);
  sched.add({"a", cfg});
  sched.add({"b", cfg});
  sched.add({"c", cfg});
  const farm::FarmSummary sum = sched.run();
  set_host_threads(0);

  EXPECT_EQ(sum.failed, 0u);
  EXPECT_EQ(sum.scenario_steps, 3u * static_cast<unsigned>(cfg.steps));
  EXPECT_GT(sum.memo_hits, 0u);
  EXPECT_GT(sum.price_hits, 0u);
  // One shape, one resident session at a time: one workspace total,
  // leased back out to jobs b and c.
  EXPECT_EQ(sum.workspaces_created, 1u);
  EXPECT_EQ(sum.workspaces_reused, 2u);
  EXPECT_GT(sum.steps_per_sec, 0.0);
}

TEST(FarmScheduling, RejectsDuplicateNamesAndSharedCheckpointPaths) {
  farm::FarmScheduler sched;
  core::RunConfig cfg = pulse_config();
  cfg.checkpoint_path = temp_path("farm_dup.h5l");
  sched.add({"a", cfg});
  EXPECT_THROW(sched.add({"a", pulse_config()}), Error);
  EXPECT_THROW(sched.add({"b", cfg}), Error);  // same checkpoint path
  core::RunConfig other = pulse_config();
  other.checkpoint_path.clear();
  sched.add({"b", other});  // empty path may repeat
  sched.add({"c", other});
  EXPECT_EQ(sched.job_count(), 3u);
}

// --- job-file parsing --------------------------------------------------------

TEST(FarmJobFile, ParsesNamesAndOptions) {
  const farm::FarmJob named = farm::parse_job_line(
      "pulse-hi: --problem gaussian-pulse --steps 7 --nx1 64 --fuse on",
      "job-1");
  EXPECT_EQ(named.name, "pulse-hi");
  EXPECT_EQ(named.cfg.problem, "gaussian-pulse");
  EXPECT_EQ(named.cfg.steps, 7);
  EXPECT_EQ(named.cfg.nx1, 64);
  EXPECT_EQ(named.cfg.fuse, "on");

  const farm::FarmJob unnamed = farm::parse_job_line(
      "--problem two-species-relax --steps 2", "job-2");
  EXPECT_EQ(unnamed.name, "job-2");
  EXPECT_EQ(unnamed.cfg.problem, "two-species-relax");

  EXPECT_THROW(farm::parse_job_line("--no-such-option 3", "x"), Error);
  EXPECT_THROW(farm::parse_job_line("name-only:", "x"), Error);
}

TEST(FarmJobFile, ParsesFilesWithCommentsAndRejectsDuplicates) {
  const std::string path = temp_path("farm_jobs.txt");
  {
    std::ofstream out(path);
    out << "# a job list\n"
        << "\n"
        << "one: --problem gaussian-pulse --steps 2  # trailing comment\n"
        << "--problem two-species-relax --steps 1\n";
  }
  const auto jobs = farm::parse_job_file(path);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "one");
  EXPECT_EQ(jobs[1].name, "job-2");
  EXPECT_EQ(jobs[1].cfg.problem, "two-species-relax");

  {
    std::ofstream out(path);
    out << "same: --problem gaussian-pulse\n"
        << "same: --problem gaussian-pulse\n";
  }
  try {
    farm::parse_job_file(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate job name"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(FarmJobFile, EmptyOrCommentOnlyFileFailsEarly) {
  const std::string path = temp_path("farm_empty_jobs.txt");
  {
    std::ofstream out(path);
    out << "# nothing but comments\n"
        << "   \n"
        << "# and blank lines\n";
  }
  try {
    farm::parse_job_file(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("defines no jobs"),
              std::string::npos);
  }
  std::remove(path.c_str());

  farm::FarmScheduler sched;
  EXPECT_THROW(sched.run(), Error);  // no jobs queued: refuse, don't no-op
}

// --- fault injection + recovery ----------------------------------------------

std::vector<std::string> actions_of(
    const std::vector<resilience::RecoveryEvent>& events) {
  std::vector<std::string> out;
  for (const auto& ev : events) out.push_back(ev.action);
  return out;
}

/// The headline invariant of the resilience layer: a farmed job that
/// faults, backs off, and retries from its latest finalized checkpoint
/// finishes bit-identical — fields, per-profile per-rank clocks, full
/// cost ledgers — to the same job never faulted, in both --vla-exec
/// modes.  The reference solo run uses the *same* checkpoint cadence
/// (checkpoint Io is priced); retry wipes the failed attempt's partial
/// pricing because re-admission restores clocks/ledgers from the
/// checkpoint bit-exactly.
TEST(FarmResilience, RetryFromCheckpointBitIdenticalToFaultFree) {
  for (const std::string mode : {"native", "interpret"}) {
    const std::string ref_ck = temp_path("farm_rz_ref_" + mode + ".h5l");
    const std::string job_ck = temp_path("farm_rz_job_" + mode + ".h5l");

    core::RunConfig ref_cfg = pulse_config();
    ref_cfg.steps = 6;
    ref_cfg.vla_exec = mode;
    ref_cfg.checkpoint_path = ref_ck;
    ref_cfg.checkpoint_every = 2;
    const SimCapture ref = run_solo(ref_cfg);

    core::RunConfig job_cfg = ref_cfg;
    job_cfg.checkpoint_path = job_ck;

    // The decoy keeps the wave loop honest (another session is resident
    // while the faulted job backs off); its 2 steps sit below the pinned
    // fault step, so its schedule is empty.
    core::RunConfig decoy = pulse_config();
    decoy.vla_exec = mode;

    farm::FarmOptions opt;
    opt.host_threads = 2;
    opt.fault_plan = resilience::FaultPlan(11, "throw@5");
    opt.max_retries = 2;
    SimCapture faulted_cap;
    bool captured = false;
    opt.on_job_complete = [&](std::size_t i, core::Simulation& sim) {
      if (i == 0) {
        faulted_cap = testutil::capture(sim);
        captured = true;
      }
    };
    farm::FarmScheduler sched(opt);
    sched.add({"faulted", job_cfg});
    sched.add({"decoy", decoy});
    const farm::FarmSummary sum = sched.run();
    set_host_threads(0);

    EXPECT_EQ(sum.failed, 0u);
    EXPECT_EQ(sum.retries, 1u);
    EXPECT_EQ(sum.quarantined, 0u);
    const farm::JobResult& r = sum.jobs[0];
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(r.attempts, 2);
    EXPECT_TRUE(r.cause.empty());
    EXPECT_EQ(r.steps, 6);
    // Attempt 1 drove steps 1..5, attempt 2 re-drove 5..6 from the step-4
    // checkpoint: recovery's true cost shows up in driven_steps.
    EXPECT_EQ(r.driven_steps, 7);
    EXPECT_EQ(r.farmed_steps, 2);

    const auto actions = actions_of(r.recovery);
    ASSERT_EQ(actions.size(), 3u);
    EXPECT_EQ(actions[0], "injected-exception");
    EXPECT_EQ(actions[1], "backoff");
    EXPECT_EQ(actions[2], "retry");
    EXPECT_EQ(r.recovery[1].value, 1);  // first retry: base backoff
    EXPECT_NE(r.recovery[2].detail.find("step 4"), std::string::npos);

    ASSERT_TRUE(captured);
    testutil::expect_captures_identical(ref, faulted_cap,
                                        "retry-from-checkpoint/" + mode);

    // The decoy never saw a fault and never retried.
    EXPECT_EQ(sum.jobs[1].attempts, 1);
    EXPECT_TRUE(sum.jobs[1].recovery.empty());

    std::remove(ref_ck.c_str());
    std::remove(job_ck.c_str());
  }
}

/// Retries exhaust, backoff doubles per wave up to the cap, and the job
/// lands in quarantine with its cause and full ledger — while the rest of
/// the farm finishes normally.
TEST(FarmResilience, QuarantineAfterRetryExhaustionWithDoublingBackoff) {
  core::RunConfig doomed = pulse_config();
  doomed.steps = 5;  // no checkpoint: every retry restarts from scratch

  farm::FarmOptions opt;
  opt.host_threads = 2;
  // One pinned fault per attempt: the retry gets one step further each
  // time and trips the next one.
  opt.fault_plan =
      resilience::FaultPlan(3, "throw@1; throw@2; throw@3; throw@4");
  opt.max_retries = 3;
  farm::FarmScheduler sched(opt);
  sched.add({"doomed", doomed});
  sched.add({"bystander", pulse_config()});
  const farm::FarmSummary sum = sched.run();
  set_host_threads(0);

  EXPECT_EQ(sum.failed, 1u);
  EXPECT_EQ(sum.quarantined, 1u);
  // 3 from the doomed job + 2 from the bystander (see below).
  EXPECT_EQ(sum.retries, 5u);
  const farm::JobResult& r = sum.jobs[0];
  EXPECT_EQ(r.attempts, 4);
  EXPECT_EQ(r.cause, "quarantined: injected");
  EXPECT_NE(r.error.find("injected session-step exception"),
            std::string::npos);

  // Backoff ordering across waves: 1, 2, 4 waves before the three
  // retries, then quarantine.
  std::vector<long> backoffs;
  int quarantines = 0;
  for (const auto& ev : r.recovery) {
    if (ev.action == "backoff") backoffs.push_back(ev.value);
    if (ev.action == "quarantine") ++quarantines;
  }
  EXPECT_EQ(backoffs, (std::vector<long>{1, 2, 4}));
  EXPECT_EQ(quarantines, 1);

  // The plan schedules faults for every job: the 2-step bystander trips
  // the pinned throws at steps 1 and 2 on its first two attempts, then
  // finishes clean on the third — transient faults are survivable even
  // with no checkpoint to resume from, and quarantine of the doomed job
  // is isolation, not contagion.
  EXPECT_TRUE(sum.jobs[1].error.empty());
  EXPECT_EQ(sum.jobs[1].attempts, 3);
  EXPECT_TRUE(sum.jobs[1].cause.empty());
}

TEST(FarmResilience, BackoffIsCappedAtTheCeiling) {
  core::RunConfig doomed = pulse_config();
  doomed.steps = 6;

  farm::FarmOptions opt;
  opt.host_threads = 1;
  // One fault per attempt, five attempts deep: base 2 doubles to 4, then
  // saturates at the cap of 5 for the remaining retries.
  opt.fault_plan = resilience::FaultPlan(
      9, "throw@1; throw@2; throw@3; throw@4; throw@5");
  opt.max_retries = 4;
  opt.backoff_base_waves = 2;
  opt.backoff_cap_waves = 5;
  farm::FarmScheduler sched(opt);
  sched.add({"doomed", doomed});
  const farm::FarmSummary sum = sched.run();
  set_host_threads(0);

  EXPECT_EQ(sum.failed, 1u);
  const farm::JobResult& r = sum.jobs[0];
  EXPECT_EQ(r.attempts, 5);
  std::vector<long> backoffs;
  for (const auto& ev : r.recovery)
    if (ev.action == "backoff") backoffs.push_back(ev.value);
  EXPECT_EQ(backoffs, (std::vector<long>{2, 4, 5, 5}));
}

TEST(FarmResilience, StepBudgetBecomesADeadlineFailureWithoutRetry) {
  core::RunConfig runaway = pulse_config();
  runaway.steps = 10;

  farm::FarmOptions opt;
  opt.host_threads = 1;
  opt.job_step_budget = 3;
  opt.max_retries = 5;  // retries must NOT rescue a deadline
  farm::FarmScheduler sched(opt);
  sched.add({"runaway", runaway});
  const farm::FarmSummary sum = sched.run();
  set_host_threads(0);

  EXPECT_EQ(sum.failed, 1u);
  EXPECT_EQ(sum.retries, 0u);
  const farm::JobResult& r = sum.jobs[0];
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.cause, "deadline");
  EXPECT_NE(r.error.find("step budget"), std::string::npos);
}

}  // namespace
}  // namespace v2d
