#pragma once
/// \file ledger_testutil.hpp
/// \brief Shared test helper: assert two cost ledgers are bit-identical,
/// field by field — every KernelCounts slot, every priced cycle figure,
/// every communication tally.  Used by the scenario bit-identity pin and
/// the checkpoint-restart round-trips so neither suite can silently
/// compare a subset.

#include <gtest/gtest.h>

#include <string>

#include "sim/ledger.hpp"

namespace v2d::testutil {

inline void expect_ledgers_identical(const sim::CostLedger& a,
                                     const sim::CostLedger& b,
                                     const std::string& where) {
  ASSERT_EQ(a.regions().size(), b.regions().size()) << where;
  auto ia = a.regions().begin();
  for (auto ib = b.regions().begin(); ib != b.regions().end(); ++ia, ++ib) {
    ASSERT_EQ(ia->first, ib->first) << where;
    const std::string tag = where + " " + ia->first;
    const sim::RegionCost& ra = ia->second;
    const sim::RegionCost& rb = ib->second;
    for (std::size_t i = 0; i < sim::kNumOpClasses; ++i) {
      EXPECT_EQ(ra.counts.instr[i], rb.counts.instr[i])
          << tag << " instr[" << i << "]";
      EXPECT_EQ(ra.counts.lanes[i], rb.counts.lanes[i])
          << tag << " lanes[" << i << "]";
    }
    EXPECT_EQ(ra.counts.bytes_read, rb.counts.bytes_read) << tag;
    EXPECT_EQ(ra.counts.bytes_written, rb.counts.bytes_written) << tag;
    EXPECT_EQ(ra.counts.elements, rb.counts.elements) << tag;
    EXPECT_EQ(ra.counts.calls, rb.counts.calls) << tag;
    EXPECT_EQ(ra.compute_cycles, rb.compute_cycles) << tag;
    EXPECT_EQ(ra.memory_cycles, rb.memory_cycles) << tag;
    EXPECT_EQ(ra.overhead_cycles, rb.overhead_cycles) << tag;
    EXPECT_EQ(ra.total_cycles, rb.total_cycles) << tag;
    EXPECT_EQ(ra.comm_seconds, rb.comm_seconds) << tag;
    EXPECT_EQ(ra.comm_messages, rb.comm_messages) << tag;
    EXPECT_EQ(ra.comm_bytes, rb.comm_bytes) << tag;
  }
}

}  // namespace v2d::testutil
