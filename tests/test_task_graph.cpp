/// \file test_task_graph.cpp
/// \brief The dependency-scheduled host executor (--host-sched graph):
/// counter correctness, chain ordering, join semantics, error paths.
///
/// These are scheduler unit tests — the simulation-level bit-identity
/// contract (graph vs barrier vs serial) is pinned in
/// test_rank_parallel.cpp.  Every test sweeps 1, 2 and 8 host threads:
/// a driving thread alone, one worker lane, and oversubscription on the
/// test runner, because the interesting races only exist off the serial
/// path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "support/error.hpp"
#include "support/task_graph.hpp"
#include "support/thread_pool.hpp"

namespace v2d {
namespace {

/// Serial, one worker, oversubscribed.
constexpr int kThreadSweep[] = {1, 2, 8};

// --- dependency counters ------------------------------------------------------

/// A diamond A -> {B, C} -> D: every edge must hold, at any lane count,
/// and D runs exactly once even though two predecessors release it.
TEST(TaskGraphTest, DependencyCountersGateADiamond) {
  for (const int threads : kThreadSweep) {
    set_host_threads(threads);
    task_graph::GraphRegion region(true);
    task_graph::Session* ses = task_graph::current();
    ASSERT_NE(ses, nullptr);
    for (int rep = 0; rep < 50; ++rep) {
      std::atomic<bool> a_done{false}, b_done{false}, c_done{false};
      std::atomic<int> d_runs{0};
      auto* a = ses->create([&] { a_done.store(true); });
      auto* b = ses->create([&] {
        EXPECT_TRUE(a_done.load()) << "threads=" << threads;
        b_done.store(true);
      });
      auto* c = ses->create([&] {
        EXPECT_TRUE(a_done.load()) << "threads=" << threads;
        c_done.store(true);
      });
      auto* d = ses->create([&] {
        EXPECT_TRUE(b_done.load()) << "threads=" << threads;
        EXPECT_TRUE(c_done.load()) << "threads=" << threads;
        d_runs.fetch_add(1);
      });
      ses->add_dep(b, a);
      ses->add_dep(c, a);
      ses->add_dep(d, b);
      ses->add_dep(d, c);
      ses->submit(a);
      ses->submit(b);
      ses->submit(c);
      ses->submit(d);
      ses->sync();
      EXPECT_EQ(d_runs.load(), 1);
    }
  }
  set_host_threads(0);
}

// --- chained stages -----------------------------------------------------------

/// Stage s of rank r depends only on stage s-1 of rank r: each rank sees
/// its stages in submission order with no cross-rank barrier.  Unsynchronized
/// per-rank vectors double as the race detector — a missing edge corrupts
/// them (and trips TSan in the sanitizer job).
TEST(TaskGraphTest, ChainedStagesRunInOrderPerRank) {
  constexpr int kRanks = 5;
  constexpr int kStages = 64;
  for (const int threads : kThreadSweep) {
    set_host_threads(threads);
    task_graph::GraphRegion region(true);
    task_graph::Session* ses = task_graph::current();
    ASSERT_NE(ses, nullptr);
    const int domain = 0;
    std::vector<std::vector<int>> seen(kRanks);
    for (int s = 0; s < kStages; ++s)
      ses->chain_stage(&domain, kRanks, [&seen, s](int r) {
        seen[static_cast<std::size_t>(r)].push_back(s);
      });
    ses->sync();
    for (int r = 0; r < kRanks; ++r) {
      const auto& v = seen[static_cast<std::size_t>(r)];
      ASSERT_EQ(v.size(), static_cast<std::size_t>(kStages))
          << "threads=" << threads << " rank " << r;
      for (int s = 0; s < kStages; ++s)
        EXPECT_EQ(v[static_cast<std::size_t>(s)], s)
            << "threads=" << threads << " rank " << r;
    }
  }
  set_host_threads(0);
}

/// Switching chain domains (or rank counts) is a join: the first stage on
/// the new domain observes every task of the old one.
TEST(TaskGraphTest, ChainDomainSwitchIsAJoin) {
  constexpr int kRanks = 4;
  constexpr int kStages = 16;
  for (const int threads : kThreadSweep) {
    set_host_threads(threads);
    task_graph::GraphRegion region(true);
    task_graph::Session* ses = task_graph::current();
    ASSERT_NE(ses, nullptr);
    const int dom_a = 0;
    const int dom_b = 0;
    std::atomic<int> done_a{0};
    for (int s = 0; s < kStages; ++s)
      ses->chain_stage(&dom_a, kRanks, [&done_a](int) { done_a.fetch_add(1); });
    ses->chain_stage(&dom_b, kRanks, [&done_a, threads](int) {
      EXPECT_EQ(done_a.load(), kRanks * kStages) << "threads=" << threads;
    });
    ses->sync();
  }
  set_host_threads(0);
}

// --- join semantics -----------------------------------------------------------

/// A barrier stage (parallel_for under an open session routes through
/// Session::run_sync) drains all chained work first, and runs every index
/// exactly once — the deterministic-join contract collectives rely on.
TEST(TaskGraphTest, BarrierStageObservesChainedPredecessors) {
  constexpr int kRanks = 4;
  constexpr int kStages = 16;
  for (const int threads : kThreadSweep) {
    set_host_threads(threads);
    task_graph::GraphRegion region(true);
    ASSERT_NE(task_graph::current(), nullptr);
    const int domain = 0;
    std::atomic<int> chained{0};
    for (int s = 0; s < kStages; ++s)
      task_graph::current()->chain_stage(&domain, kRanks,
                                         [&chained](int) { chained++; });
    std::vector<std::atomic<int>> hits(100);
    parallel_for(100, [&](int i) {
      EXPECT_EQ(chained.load(), kRanks * kStages) << "threads=" << threads;
      hits[static_cast<std::size_t>(i)]++;
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "threads=" << threads;
  }
  set_host_threads(0);
}

/// sync_current() from the driving thread is the same join; on worker
/// threads and inside task bodies it must be a no-op (a task draining the
/// graph it is part of would deadlock).
TEST(TaskGraphTest, SyncCurrentJoinsFromTheDrivingThreadOnly) {
  for (const int threads : kThreadSweep) {
    set_host_threads(threads);
    task_graph::GraphRegion region(true);
    task_graph::Session* ses = task_graph::current();
    ASSERT_NE(ses, nullptr);
    const int domain = 0;
    std::atomic<int> ran{0};
    ses->chain_stage(&domain, 4, [&ran](int) {
      task_graph::sync_current();  // inside a task: must not self-join
      ran.fetch_add(1);
    });
    task_graph::sync_current();
    EXPECT_EQ(ran.load(), 4) << "threads=" << threads;
  }
  set_host_threads(0);
}

/// Nested parallel_for inside a graph task runs inline, like the thread
/// pool's nested-run rule.
TEST(TaskGraphTest, NestedParallelForRunsInlineInsideTasks) {
  set_host_threads(4);
  {
    task_graph::GraphRegion region(true);
    ASSERT_NE(task_graph::current(), nullptr);
    std::vector<std::atomic<int>> hits(16);
    parallel_for(4, [&](int outer) {
      EXPECT_TRUE(task_graph::in_task());
      parallel_for(4, [&](int inner) {
        hits[static_cast<std::size_t>(4 * outer + inner)]++;
      });
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  EXPECT_FALSE(task_graph::in_task());
  set_host_threads(0);
}

// --- error propagation --------------------------------------------------------

/// A chained task's exception surfaces at the next join, and the session
/// stays usable afterwards (mirrors ThreadPool::run semantics).
TEST(TaskGraphTest, ChainedTaskErrorSurfacesAtTheNextJoin) {
  for (const int threads : kThreadSweep) {
    set_host_threads(threads);
    task_graph::GraphRegion region(true);
    task_graph::Session* ses = task_graph::current();
    ASSERT_NE(ses, nullptr);
    const int domain = 0;
    ses->chain_stage(&domain, 4, [](int r) {
      if (r == 2) throw Error("chained task failure");
    });
    EXPECT_THROW(ses->sync(), Error) << "threads=" << threads;
    std::atomic<int> count{0};
    parallel_for(32, [&](int) { count++; });
    EXPECT_EQ(count.load(), 32) << "threads=" << threads;
  }
  set_host_threads(0);
}

TEST(TaskGraphTest, BarrierStageErrorPropagates) {
  for (const int threads : kThreadSweep) {
    set_host_threads(threads);
    task_graph::GraphRegion region(true);
    ASSERT_NE(task_graph::current(), nullptr);
    EXPECT_THROW(parallel_for(64,
                              [](int i) {
                                if (i == 37) throw Error("stage failure");
                              }),
                 Error)
        << "threads=" << threads;
  }
  set_host_threads(0);
}

// --- GraphRegion scoping ------------------------------------------------------

TEST(TaskGraphTest, GraphRegionScopesAndNests) {
  set_host_threads(2);
  EXPECT_EQ(task_graph::current(), nullptr);
  {
    task_graph::GraphRegion off(false);
    EXPECT_EQ(task_graph::current(), nullptr);  // disabled: plain barrier mode
  }
  {
    task_graph::GraphRegion outer(true);
    task_graph::Session* ses = task_graph::current();
    EXPECT_NE(ses, nullptr);
    {
      task_graph::GraphRegion inner(true);
      EXPECT_EQ(task_graph::current(), ses);  // nesting joins the outer session
    }
    EXPECT_EQ(task_graph::current(), ses);  // inner close leaves it open
  }
  EXPECT_EQ(task_graph::current(), nullptr);
  set_host_threads(0);
}

/// A farmed job's solver opening a GraphRegion from inside a pool task
/// must keep its inline semantics — capturing the pool's workers from one
/// of the pool's own tasks would deadlock.
TEST(TaskGraphTest, GraphRegionIsANoOpInsidePoolTasks) {
  set_host_threads(4);
  std::atomic<int> inline_count{0};
  host_pool()->run(4, [&](int) {
    task_graph::GraphRegion region(true);
    if (task_graph::current() == nullptr) inline_count++;
  });
  EXPECT_EQ(inline_count.load(), 4);
  set_host_threads(0);
}

// --- affinity -----------------------------------------------------------------

/// The home lane of (domain, rank) is a pure function: stable across
/// calls and always a valid lane, so a rank's whole chain lands on one
/// lane for the session's lifetime.
TEST(TaskGraphTest, HomeLanePlacementIsStablePerChainKey) {
  set_host_threads(4);
  {
    task_graph::GraphRegion region(true);
    task_graph::Session* ses = task_graph::current();
    ASSERT_NE(ses, nullptr);
    const int dom = 0;
    for (int r = 0; r < 64; ++r) {
      const int h = ses->home_lane(&dom, r);
      EXPECT_GE(h, 0);
      EXPECT_LT(h, 4);
      EXPECT_EQ(h, ses->home_lane(&dom, r));
    }
  }
  set_host_threads(0);
}

/// Every chained task is homed, and executes either on its home lane
/// (affinity hit) or via the idle-lane steal fallback — the two counters
/// partition the chained tasks exactly.  Stealing must never reorder a
/// rank's chain, so the per-rank stage order doubles as the correctness
/// check for the fallback path.  At one thread there is a single lane:
/// homes are disabled and nothing can be stolen.
TEST(TaskGraphTest, AffinityHitsAndStealsPartitionChainedTasks) {
  constexpr int kRanks = 6;
  constexpr int kStages = 48;
  ASSERT_TRUE(task_graph::affinity_enabled());  // default-on policy
  for (const int threads : kThreadSweep) {
    set_host_threads(threads);
    const task_graph::SchedStats before = task_graph::stats();
    std::vector<std::vector<int>> seen(kRanks);
    {
      task_graph::GraphRegion region(true);
      task_graph::Session* ses = task_graph::current();
      ASSERT_NE(ses, nullptr);
      const int dom = 0;
      for (int s = 0; s < kStages; ++s)
        ses->chain_stage(&dom, kRanks, [&seen, s](int r) {
          seen[static_cast<std::size_t>(r)].push_back(s);
        });
    }
    const task_graph::SchedStats d = task_graph::stats().since(before);
    EXPECT_EQ(d.chained_tasks, static_cast<std::uint64_t>(kRanks) * kStages)
        << "threads=" << threads;
    if (threads == 1) {
      EXPECT_EQ(d.affinity_hits, 0u);
      EXPECT_EQ(d.steals, 0u);
    } else {
      EXPECT_EQ(d.affinity_hits + d.steals, d.chained_tasks)
          << "threads=" << threads;
    }
    for (int r = 0; r < kRanks; ++r) {
      const auto& v = seen[static_cast<std::size_t>(r)];
      ASSERT_EQ(v.size(), static_cast<std::size_t>(kStages))
          << "threads=" << threads << " rank " << r;
      for (int s = 0; s < kStages; ++s)
        EXPECT_EQ(v[static_cast<std::size_t>(s)], s)
            << "threads=" << threads << " rank " << r;
    }
  }
  set_host_threads(0);
}

/// set_affinity(false) restores the wave-1 submitter-lane placement: no
/// task carries a home, so no affinity hits are ever counted.
TEST(TaskGraphTest, AffinityToggleRestoresSubmitterPlacement) {
  set_host_threads(4);
  task_graph::set_affinity(false);
  const task_graph::SchedStats before = task_graph::stats();
  {
    task_graph::GraphRegion region(true);
    task_graph::Session* ses = task_graph::current();
    ASSERT_NE(ses, nullptr);
    const int dom = 0;
    for (int s = 0; s < 16; ++s) ses->chain_stage(&dom, 4, [](int) {});
  }
  const task_graph::SchedStats d = task_graph::stats().since(before);
  EXPECT_EQ(d.chained_tasks, 64u);
  EXPECT_EQ(d.affinity_hits, 0u);
  task_graph::set_affinity(true);
  EXPECT_TRUE(task_graph::affinity_enabled());
  set_host_threads(0);
}

// --- pipelined reductions -----------------------------------------------------

/// chain_combine depends on every rank's chain tail but does not consume
/// the chain: the combine sees all partials (in rank order, at any thread
/// count), a speculative next stage chains behind the partials rather
/// than the combine, and wait() returns with the combined value ready.
TEST(TaskGraphTest, ChainCombinePipelinesPastTheJoin) {
  constexpr int kRanks = 4;
  constexpr int kStages = 4;
  for (const int threads : kThreadSweep) {
    set_host_threads(threads);
    task_graph::GraphRegion region(true);
    task_graph::Session* ses = task_graph::current();
    ASSERT_NE(ses, nullptr);
    const int dom = 0;
    std::vector<double> partial(kRanks, 0.0);
    for (int s = 0; s < kStages; ++s)
      ses->chain_stage(&dom, kRanks, [&partial, s](int r) {
        partial[static_cast<std::size_t>(r)] += (r + 1) * (s + 1);
      });
    double total = -1.0;
    const task_graph::SchedStats before = task_graph::stats();
    task_graph::Session::Task* combine =
        ses->chain_combine(&dom, [&partial, &total] {
          double t = 0.0;
          for (int r = 0; r < kRanks; ++r)
            t += partial[static_cast<std::size_t>(r)];
          total = t;
        });
    ASSERT_NE(combine, nullptr) << "threads=" << threads;
    EXPECT_EQ(task_graph::stats().since(before).combines, 1u);
    // Speculative next stage: submits while the combine may still be
    // pending, because it depends on the partials, not the combine.
    std::atomic<int> after{0};
    ses->chain_stage(&dom, kRanks, [&after](int) { after.fetch_add(1); });
    ses->wait(combine);
    // Σ_r (r+1) · Σ_s (s+1) = 10 · 10.
    EXPECT_EQ(total, 100.0) << "threads=" << threads;
    ses->sync();
    EXPECT_EQ(after.load(), kRanks) << "threads=" << threads;
  }
  set_host_threads(0);
}

/// Without a live chain the combine degrades to a drained inline call: no
/// task to wait on, and wait(nullptr) is a no-op.
TEST(TaskGraphTest, ChainCombineWithoutALiveChainRunsInline) {
  set_host_threads(2);
  {
    task_graph::GraphRegion region(true);
    task_graph::Session* ses = task_graph::current();
    ASSERT_NE(ses, nullptr);
    const int dom = 0;
    bool ran = false;
    task_graph::Session::Task* t =
        ses->chain_combine(&dom, [&ran] { ran = true; });
    EXPECT_EQ(t, nullptr);
    EXPECT_TRUE(ran);
    ses->wait(nullptr);
  }
  set_host_threads(0);
}

// --- stats --------------------------------------------------------------------

TEST(TaskGraphTest, StatsCountSessionsStagesAndTasks) {
  set_host_threads(2);
  const task_graph::SchedStats before = task_graph::stats();
  {
    task_graph::GraphRegion region(true);
    task_graph::Session* ses = task_graph::current();
    ASSERT_NE(ses, nullptr);
    const int domain = 0;
    ses->chain_stage(&domain, 4, [](int) {});
    parallel_for(8, [](int) {});
  }
  const task_graph::SchedStats d = task_graph::stats().since(before);
  EXPECT_EQ(d.sessions, 1u);
  EXPECT_EQ(d.chained_stages, 1u);
  EXPECT_EQ(d.chained_tasks, 4u);
  EXPECT_GE(d.stages, 1u);
  EXPECT_GE(d.tasks, d.chained_tasks);
  EXPECT_GE(d.syncs, 1u);
  EXPECT_GT(d.overlap_ratio(), 0.0);
  set_host_threads(0);
}

}  // namespace
}  // namespace v2d
