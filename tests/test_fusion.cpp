/// \file test_fusion.cpp
/// \brief Fused-kernel execution layer: composite kernels, solver wiring
/// and the FuseMode contract.
///
/// Three layers of pins, mirroring test_vla_fastpath.cpp:
///   1. every fused composite kernel is bit-identical between the
///      interpreter and native backends, with identical KernelCounts,
///      across all architectural VLs and tail shapes;
///   2. every composite reproduces its unfused kernel chain bit-for-bit
///      (same per-element association order, same compensated reductions);
///   3. a CG/BiCGSTAB solve with --fuse on matches --fuse off exactly —
///      same iterates, same reduction count, bit-identical solution —
///      while the fused simulated clock is strictly cheaper.
/// Plus the BiCGSTAB edge paths (zero rhs, exact breakdown, indefinite
/// operator) and the SolveStats stop-reason contract.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/v2d.hpp"
#include "linalg/bicgstab.hpp"
#include "linalg/cg.hpp"
#include "linalg/kernel_counts.hpp"
#include "linalg/kernels.hpp"
#include "linalg/precond.hpp"
#include "linalg/stencil_op.hpp"
#include "perfmon/perf_stat.hpp"
#include "support/dd.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace v2d::linalg {
namespace {

using vla::Context;
using vla::VectorArch;
using vla::VlaExecMode;

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

void expect_counts_equal(const sim::KernelCounts& interp,
                         const sim::KernelCounts& fast) {
  for (std::size_t i = 0; i < sim::kNumOpClasses; ++i) {
    const auto c = static_cast<sim::OpClass>(i);
    EXPECT_EQ(interp.instr[i], fast.instr[i])
        << "instr mismatch for " << sim::op_class_name(c);
    EXPECT_EQ(interp.lanes[i], fast.lanes[i])
        << "lanes mismatch for " << sim::op_class_name(c);
  }
  EXPECT_EQ(interp.bytes_read, fast.bytes_read);
  EXPECT_EQ(interp.bytes_written, fast.bytes_written);
}

void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
  }
}

// --- 1. interpreter vs native equivalence of the composites ------------------

class FusedKernelSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {
protected:
  unsigned bits() const { return std::get<0>(GetParam()); }
  std::size_t n() const {
    const std::size_t vl = bits() / 64;
    switch (std::get<1>(GetParam())) {
      case 0: return 0;
      case 1: return 1;
      case 2: return vl - 1;
      case 3: return vl;
      case 4: return vl + 1;
      case 5: return 3 * vl;
      case 6: return 3 * vl + vl / 2;
      default: return 257;
    }
  }
  Context interp_ctx() const {
    return Context(VectorArch(bits()), VlaExecMode::Interpret);
  }
  Context native_ctx() const {
    return Context(VectorArch(bits()), VlaExecMode::Native);
  }
};

TEST_P(FusedKernelSweep, Daxpy2) {
  Rng rng(31);
  const auto p = random_vec(n(), rng), q = random_vec(n(), rng);
  auto xi = random_vec(n(), rng), xn = xi;
  auto ri = random_vec(n(), rng), rn = ri;
  Context ci = interp_ctx(), cx = native_ctx();
  daxpy2(ci, 0.7, p, xi, -0.7, q, ri);
  daxpy2(cx, 0.7, p, xn, -0.7, q, rn);
  expect_bits_equal(xi, xn);
  expect_bits_equal(ri, rn);
  expect_counts_equal(ci.take_counts(), cx.take_counts());
}

TEST_P(FusedKernelSweep, AxpyOut) {
  Rng rng(32);
  const auto x = random_vec(n(), rng), y = random_vec(n(), rng);
  std::vector<double> zi(n()), zn(n());
  Context ci = interp_ctx(), cx = native_ctx();
  axpy_out(ci, x, -1.3, y, zi);
  axpy_out(cx, x, -1.3, y, zn);
  expect_bits_equal(zi, zn);
  expect_counts_equal(ci.take_counts(), cx.take_counts());
}

TEST_P(FusedKernelSweep, PUpdate) {
  Rng rng(33);
  const auto r = random_vec(n(), rng), v = random_vec(n(), rng);
  auto pi = random_vec(n(), rng), pn = pi;
  Context ci = interp_ctx(), cx = native_ctx();
  p_update(ci, r, 0.8, 0.45, v, pi);
  p_update(cx, r, 0.8, 0.45, v, pn);
  expect_bits_equal(pi, pn);
  expect_counts_equal(ci.take_counts(), cx.take_counts());
}

TEST_P(FusedKernelSweep, HadamardDot2) {
  Rng rng(34);
  const auto m = random_vec(n(), rng), r = random_vec(n(), rng);
  std::vector<double> zi(n()), zn(n());
  Context ci = interp_ctx(), cx = native_ctx();
  DdAccumulator rzi, rri, rzn, rrn;
  hadamard_dot2(ci, m, r, zi, rzi, rri);
  hadamard_dot2(cx, m, r, zn, rzn, rrn);
  expect_bits_equal(zi, zn);
  EXPECT_EQ(rzi.value(), rzn.value());
  EXPECT_EQ(rri.value(), rrn.value());
  expect_counts_equal(ci.take_counts(), cx.take_counts());
}

TEST_P(FusedKernelSweep, HadamardUpdateDot2) {
  Rng rng(38);
  const auto m = random_vec(n(), rng), q = random_vec(n(), rng);
  auto ri = random_vec(n(), rng), rn = ri;
  std::vector<double> zi(n()), zn(n());
  Context ci = interp_ctx(), cx = native_ctx();
  DdAccumulator rzi, rri, rzn, rrn;
  hadamard_update_dot2(ci, m, -0.6, q, ri, zi, rzi, rri);
  hadamard_update_dot2(cx, m, -0.6, q, rn, zn, rzn, rrn);
  expect_bits_equal(ri, rn);
  expect_bits_equal(zi, zn);
  EXPECT_EQ(rzi.value(), rzn.value());
  EXPECT_EQ(rri.value(), rrn.value());
  expect_counts_equal(ci.take_counts(), cx.take_counts());

  // And the composite == DAXPY ; HADAMARD ; compensated {z·r, r·r}.
  Context plain = native_ctx();
  auto rr2 = ri;
  rr2 = random_vec(n(), rng);
  auto r_ref = rr2, r_fused = rr2;
  std::vector<double> z_ref(n()), z_fused(n());
  DdAccumulator rz_f, rr_f;
  hadamard_update_dot2(cx, m, -0.6, q, r_fused, z_fused, rz_f, rr_f);
  daxpy(plain, -0.6, q, r_ref);
  hadamard(plain, m, r_ref, z_ref);
  expect_bits_equal(r_fused, r_ref);
  expect_bits_equal(z_fused, z_ref);
  DdAccumulator rz_ref, rr_ref;
  for (std::size_t i = 0; i < n(); ++i) {
    rz_ref.add(z_ref[i] * r_ref[i]);
    rr_ref.add(r_ref[i] * r_ref[i]);
  }
  EXPECT_EQ(rz_f.value(), rz_ref.value());
  EXPECT_EQ(rr_f.value(), rr_ref.value());
  (void)cx.take_counts();
  (void)plain.take_counts();
}

/// Shared operands for the stencil composites; xc has a ghost each side.
/// Buffers are padded by one element so .data() stays non-null at n = 0
/// (tile rows are never empty in production, but the kernels' empty-loop
/// behaviour is still pinned); spans are built at the true length.
struct StencilOperands {
  std::size_t n;
  std::vector<double> cc, cw, ce, cs, cn, csp, xc, xs, xn, xo, b, w;

  StencilOperands(std::size_t n_, Rng& rng)
      : n(n_),
        cc(random_vec(n + 1, rng)),
        cw(random_vec(n + 1, rng)),
        ce(random_vec(n + 1, rng)),
        cs(random_vec(n + 1, rng)),
        cn(random_vec(n + 1, rng)),
        csp(random_vec(n + 1, rng)),
        xc(random_vec(n + 2, rng)),
        xs(random_vec(n + 1, rng)),
        xn(random_vec(n + 1, rng)),
        xo(random_vec(n + 1, rng)),
        b(random_vec(n + 1, rng)),
        w(random_vec(n + 1, rng)) {}

  std::span<const double> s(const std::vector<double>& v) const {
    return {v.data(), n};
  }
};

TEST_P(FusedKernelSweep, StencilDotSelfAndOther) {
  Rng rng(35);
  StencilOperands op(n(), rng);
  for (const bool coupled : {false, true}) {
    for (const bool self : {true, false}) {
      std::vector<double> yi(n()), yn(n());
      Context ci = interp_ctx(), cx = native_ctx();
      DdAccumulator di, dn;
      const double* csp = coupled ? op.csp.data() : nullptr;
      const double* xo = coupled ? op.xo.data() : nullptr;
      const double* wi = self ? op.xc.data() + 1 : op.w.data();
      stencil_row_fused(ci, op.s(op.cc), op.s(op.cw), op.s(op.ce),
                        op.s(op.cs), op.s(op.cn), op.xc.data() + 1,
                        op.xs.data(), op.xn.data(), csp, xo, nullptr, wi, &di,
                        yi);
      stencil_row_fused(cx, op.s(op.cc), op.s(op.cw), op.s(op.ce),
                        op.s(op.cs), op.s(op.cn), op.xc.data() + 1,
                        op.xs.data(), op.xn.data(), csp, xo, nullptr, wi, &dn,
                        yn);
      expect_bits_equal(yi, yn);
      EXPECT_EQ(di.value(), dn.value());
      expect_counts_equal(ci.take_counts(), cx.take_counts());
    }
  }
}

TEST_P(FusedKernelSweep, StencilSub) {
  Rng rng(36);
  StencilOperands op(n(), rng);
  for (const bool coupled : {false, true}) {
    std::vector<double> ri(n()), rn(n());
    Context ci = interp_ctx(), cx = native_ctx();
    const double* csp = coupled ? op.csp.data() : nullptr;
    const double* xo = coupled ? op.xo.data() : nullptr;
    stencil_row_fused(ci, op.s(op.cc), op.s(op.cw), op.s(op.ce), op.s(op.cs),
                      op.s(op.cn), op.xc.data() + 1, op.xs.data(),
                      op.xn.data(), csp, xo, op.b.data(), nullptr, nullptr,
                      ri);
    stencil_row_fused(cx, op.s(op.cc), op.s(op.cw), op.s(op.ce), op.s(op.cs),
                      op.s(op.cn), op.xc.data() + 1, op.xs.data(),
                      op.xn.data(), csp, xo, op.b.data(), nullptr, nullptr,
                      rn);
    expect_bits_equal(ri, rn);
    expect_counts_equal(ci.take_counts(), cx.take_counts());
  }
}

/// Every composite must reproduce its unfused kernel chain bit-for-bit —
/// this is what licenses --fuse on to claim "numerically pinned".
TEST_P(FusedKernelSweep, CompositesMatchUnfusedChains) {
  Rng rng(37);
  StencilOperands op(n(), rng);
  Context fused = native_ctx(), plain = native_ctx();
  const auto cc = op.s(op.cc), cw = op.s(op.cw), ce = op.s(op.ce),
             cs = op.s(op.cs), cn = op.s(op.cn), b = op.s(op.b),
             w = op.s(op.w);

  // DAXPY₂ == DAXPY ; DAXPY.
  {
    std::vector<double> xf(b.begin(), b.end()), xr = xf;
    std::vector<double> rf(w.begin(), w.end()), rr = rf;
    daxpy2(fused, 0.9, cc, xf, -0.9, cw, rf);
    daxpy(plain, 0.9, cc, xr);
    daxpy(plain, -0.9, cw, rr);
    expect_bits_equal(xf, xr);
    expect_bits_equal(rf, rr);
  }
  // AxpyOut == COPY ; DAXPY.
  {
    std::vector<double> zf(n()), zr(n());
    axpy_out(fused, cc, -0.4, cw, zf);
    copy(plain, cc, zr);
    daxpy(plain, -0.4, cw, zr);
    expect_bits_equal(zf, zr);
  }
  // PUpdate == DAXPY ; XPBY.
  {
    std::vector<double> pf(cs.begin(), cs.end()), pr = pf;
    p_update(fused, cc, 1.7, 0.3, cw, pf);
    daxpy(plain, -0.3, cw, pr);
    xpby(plain, cc, 1.7, pr);
    expect_bits_equal(pf, pr);
  }
  // HadamardDot2 == HADAMARD ; compensated {z·r, r·r}.
  {
    std::vector<double> zf(n()), zr(n());
    DdAccumulator rz, rr2;
    hadamard_dot2(fused, cc, cw, zf, rz, rr2);
    hadamard(plain, cc, cw, zr);
    expect_bits_equal(zf, zr);
    DdAccumulator rz_ref, rr_ref;
    for (std::size_t i = 0; i < n(); ++i) {
      rz_ref.add(cw[i] * zr[i]);
      rr_ref.add(cw[i] * cw[i]);
    }
    EXPECT_EQ(rz.value(), rz_ref.value());
    EXPECT_EQ(rr2.value(), rr_ref.value());
  }
  // Fused residual == STENCIL ; SUB  (uncoupled and coupled).
  for (const bool coupled : {false, true}) {
    std::vector<double> rf(n()), qr(n()), rr3(n());
    stencil_row_fused(fused, cc, cw, ce, cs, cn, op.xc.data() + 1,
                      op.xs.data(), op.xn.data(),
                      coupled ? op.csp.data() : nullptr,
                      coupled ? op.xo.data() : nullptr, op.b.data(), nullptr,
                      nullptr, rf);
    stencil_row(plain, cc, cw, ce, cs, cn, op.xc.data() + 1, op.xs.data(),
                op.xn.data(), qr);
    if (coupled) coupling_row(plain, op.s(op.csp), op.xo.data(), qr);
    sub(plain, b, qr, rr3);
    expect_bits_equal(rf, rr3);
  }
  // Fused MATVEC+DPROD == STENCIL ; compensated w·y.
  {
    std::vector<double> yf(n()), yr(n());
    DdAccumulator df;
    stencil_row_fused(fused, cc, cw, ce, cs, cn, op.xc.data() + 1,
                      op.xs.data(), op.xn.data(), nullptr, nullptr, nullptr,
                      op.w.data(), &df, yf);
    stencil_row(plain, cc, cw, ce, cs, cn, op.xc.data() + 1, op.xs.data(),
                op.xn.data(), yr);
    expect_bits_equal(yf, yr);
    DdAccumulator dr;
    for (std::size_t i = 0; i < n(); ++i) dr.add(w[i] * yr[i]);
    EXPECT_EQ(df.value(), dr.value());
  }
  (void)fused.take_counts();
  (void)plain.take_counts();
}

INSTANTIATE_TEST_SUITE_P(
    AllVlsAndTails, FusedKernelSweep,
    ::testing::Combine(::testing::Values(128u, 256u, 512u, 1024u, 2048u),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{3},
                                         std::size_t{4}, std::size_t{5},
                                         std::size_t{6}, std::size_t{7})));

// --- 2. solver-level fuse on/off identity -------------------------------------

struct Problem {
  grid::Grid2D g;
  grid::Decomposition d;
  StencilOperator A;

  Problem(int nx1, int nx2, int ns, int px1 = 1, int px2 = 1)
      : g(nx1, nx2, 0.0, 1.0, 0.0, 1.0),
        d(g, mpisim::CartTopology(px1, px2)),
        A(g, d, ns) {}
};

double zone_noise(std::uint64_t seed, int s, int i, int j) {
  Rng r(seed ^ (static_cast<std::uint64_t>(s) * 73856093u +
                static_cast<std::uint64_t>(i) * 19349663u +
                static_cast<std::uint64_t>(j) * 83492791u));
  return r.uniform();
}

void fill_operator(StencilOperator& A, std::uint64_t seed, double skew = 0.0) {
  const auto& dec = A.decomp();
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& e = dec.extent(r);
    for (int s = 0; s < A.ns(); ++s) {
      auto cc = A.cc().view(r, s), cw = A.cw().view(r, s),
           ce = A.ce().view(r, s), cs = A.cs().view(r, s),
           cn = A.cn().view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          const int gi = e.i0 + li, gj = e.j0 + lj;
          const double w = 0.5 + zone_noise(seed, s, gi, gj);
          cw(li, lj) = -w * (1.0 + skew * zone_noise(seed + 1, s, gi, gj));
          ce(li, lj) = -w;
          cs(li, lj) = -w * (1.0 - skew * zone_noise(seed + 2, s, gi, gj));
          cn(li, lj) = -w;
          cc(li, lj) = 4.5 * w + 0.5;
        }
      }
    }
  }
  A.zero_boundary_coefficients();
}

void fill_coupling(StencilOperator& A, std::uint64_t seed) {
  A.enable_coupling();
  const auto& dec = A.decomp();
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& e = dec.extent(r);
    for (int s = 0; s < A.ns(); ++s) {
      auto sp = A.csp().view(r, s);
      for (int lj = 0; lj < e.nj; ++lj)
        for (int li = 0; li < e.ni; ++li)
          sp(li, lj) = -0.1 * zone_noise(seed, s, e.i0 + li, e.j0 + lj);
    }
  }
}

void randomize(DistVector& v, std::uint64_t seed) {
  auto& f = v.field();
  for (int r = 0; r < f.decomp().nranks(); ++r) {
    const grid::TileExtent& e = f.decomp().extent(r);
    for (int s = 0; s < v.ns(); ++s) {
      auto view = f.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj)
        for (int li = 0; li < e.ni; ++li)
          view(li, lj) =
              2.0 * zone_noise(seed, s, e.i0 + li, e.j0 + lj) - 1.0;
    }
  }
}

struct SolveOutcome {
  SolveStats stats;
  std::vector<double> x;
};

ExecContext make_ctx(VlaExecMode mode, FuseMode fuse) {
  return ExecContext(VectorArch(512), nullptr, mode, fuse);
}

/// Fused and unfused solves must agree on everything observable from the
/// algorithm: iterates, reduction count, residual, stop reason, solution
/// bits — per solver, preconditioner, exec mode and tiling.
void expect_same_trajectory(const SolveOutcome& off, const SolveOutcome& on,
                            const std::string& label) {
  EXPECT_EQ(off.stats.iterations, on.stats.iterations) << label;
  EXPECT_EQ(off.stats.converged, on.stats.converged) << label;
  EXPECT_EQ(off.stats.global_reductions, on.stats.global_reductions) << label;
  EXPECT_EQ(off.stats.final_relative_residual,
            on.stats.final_relative_residual)
      << label;
  EXPECT_STREQ(off.stats.stop_reason, on.stats.stop_reason) << label;
  ASSERT_EQ(off.x.size(), on.x.size());
  for (std::size_t i = 0; i < off.x.size(); ++i)
    ASSERT_EQ(off.x[i], on.x[i]) << label << " zone " << i;
}

TEST(FusedSolvers, CgMatchesUnfusedAcrossPrecondsModesAndTilings) {
  for (const auto mode : {VlaExecMode::Native, VlaExecMode::Interpret}) {
    for (const std::string precond : {"jacobi", "spai0", "spai", "mg"}) {
      for (const int px : {1, 2}) {
        SolveOutcome out[2];
        for (const auto fuse : {FuseMode::Off, FuseMode::On}) {
          Problem prob(24, 16, 1, px, 1);
          fill_operator(prob.A, 1234);
          ExecContext ctx = make_ctx(mode, fuse);
          auto M = make_preconditioner(precond, ctx, prob.A);
          DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
          randomize(b, 99);
          x.fill(ctx, 0.0);
          CgSolver cg(prob.g, prob.d, 1);
          SolveOptions opt;
          opt.rel_tol = 1e-9;
          auto& slot = out[fuse == FuseMode::On ? 1 : 0];
          slot.stats = cg.solve(ctx, prob.A, *M, x, b, opt);
          slot.x = x.field().gather_global();
          EXPECT_TRUE(slot.stats.converged) << precond;
        }
        expect_same_trajectory(out[0], out[1],
                               "cg/" + precond + "/px" + std::to_string(px) +
                                   (mode == VlaExecMode::Native
                                        ? "/native"
                                        : "/interpret"));
      }
    }
  }
}

TEST(FusedSolvers, BicgstabMatchesUnfusedWithCoupling) {
  for (const auto mode : {VlaExecMode::Native, VlaExecMode::Interpret}) {
    for (const bool ganged : {true, false}) {
      for (const int px : {1, 2}) {
        SolveOutcome out[2];
        for (const auto fuse : {FuseMode::Off, FuseMode::On}) {
          Problem prob(24, 16, 2, px, px == 2 ? 2 : 1);
          fill_operator(prob.A, 777, 0.3);
          fill_coupling(prob.A, 778);
          ExecContext ctx = make_ctx(mode, fuse);
          auto M = make_preconditioner("spai0", ctx, prob.A);
          DistVector x(prob.g, prob.d, 2), b(prob.g, prob.d, 2);
          randomize(b, 55);
          x.fill(ctx, 0.0);
          BicgstabSolver solver(prob.g, prob.d, 2);
          SolveOptions opt;
          opt.rel_tol = 1e-9;
          opt.ganged = ganged;
          auto& slot = out[fuse == FuseMode::On ? 1 : 0];
          slot.stats = solver.solve(ctx, prob.A, *M, x, b, opt);
          slot.x = x.field().gather_global();
          EXPECT_TRUE(slot.stats.converged);
        }
        expect_same_trajectory(
            out[0], out[1],
            std::string("bicgstab/") + (ganged ? "ganged" : "classic") +
                "/px" + std::to_string(px));
      }
    }
  }
}

/// Fused results are also independent of the host-thread count (per-rank
/// compensated partials merged in rank order, like dot_ganged).
TEST(FusedSolvers, FusedTrajectoryInvariantUnderHostThreads) {
  std::vector<double> reference;
  for (const int threads : {1, 4}) {
    set_host_threads(threads);
    Problem prob(32, 16, 2, 2, 2);
    fill_operator(prob.A, 4321, 0.2);
    fill_coupling(prob.A, 4322);
    ExecContext ctx = make_ctx(VlaExecMode::Native, FuseMode::On);
    auto M = make_preconditioner("spai0", ctx, prob.A);
    DistVector x(prob.g, prob.d, 2), b(prob.g, prob.d, 2);
    randomize(b, 5);
    x.fill(ctx, 0.0);
    BicgstabSolver solver(prob.g, prob.d, 2);
    const auto stats = solver.solve(ctx, prob.A, *M, x, b, {});
    EXPECT_TRUE(stats.converged);
    const auto field = x.field().gather_global();
    if (reference.empty()) {
      reference = field;
    } else {
      ASSERT_EQ(field.size(), reference.size());
      for (std::size_t i = 0; i < field.size(); ++i)
        ASSERT_EQ(field[i], reference[i]) << "threads=" << threads;
    }
  }
  set_host_threads(0);
}

/// End-to-end: the full radiation driver under --fuse on reproduces the
/// unfused trajectory bit-for-bit while every compiler profile's simulated
/// clock gets strictly cheaper (fewer bytes moved, fewer instructions).
TEST(FusedSolvers, SimulationPinnedAndSimulatedTimeReduced) {
  core::RunConfig cfg;
  cfg.nx1 = 48;
  cfg.nx2 = 24;
  cfg.ns = 2;
  cfg.steps = 2;
  cfg.compilers = {"cray", "gnu"};

  cfg.fuse = "off";
  core::Simulation unfused(cfg);
  unfused.run();

  cfg.fuse = "on";
  core::Simulation fused(cfg);
  fused.run();

  const double eu = unfused.total_energy();
  const double ef = fused.total_energy();
  EXPECT_EQ(std::memcmp(&eu, &ef, sizeof eu), 0);
  EXPECT_DOUBLE_EQ(unfused.analytic_error(), fused.analytic_error());
  for (std::size_t p = 0; p < 2; ++p) {
    EXPECT_LT(fused.elapsed(p), unfused.elapsed(p)) << "profile " << p;
  }
}

// --- 3. BiCGSTAB edge paths & the stop-reason contract ------------------------

TEST(BicgstabEdgePaths, ZeroRhsAllVariants) {
  for (const bool ganged : {true, false}) {
    for (const auto fuse : {FuseMode::Off, FuseMode::On}) {
      Problem prob(16, 8, 1);
      fill_operator(prob.A, 11);
      ExecContext ctx = make_ctx(VlaExecMode::Native, fuse);
      auto M = make_preconditioner("spai0", ctx, prob.A);
      DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
      randomize(x, 3);  // non-zero guess must still collapse to x = 0
      b.fill(ctx, 0.0);
      BicgstabSolver solver(prob.g, prob.d, 1);
      SolveOptions opt;
      opt.ganged = ganged;
      const auto stats = solver.solve(ctx, prob.A, *M, x, b, opt);
      EXPECT_TRUE(stats.converged);
      EXPECT_STREQ(stats.stop_reason, "zero rhs");
      EXPECT_TRUE(stats.stop_reason_set());
      for (const double v : x.field().gather_global()) EXPECT_EQ(v, 0.0);
    }
  }
}

TEST(BicgstabEdgePaths, ExactBreakdownFromConvergedGuess) {
  // Starting from the exact solution makes r0 = 0, so ρ0 = r̂ᵀr0 = 0: the
  // exact-breakdown path, reported as such rather than div-by-zero NaNs.
  for (const bool ganged : {true, false}) {
    for (const auto fuse : {FuseMode::Off, FuseMode::On}) {
      Problem prob(16, 8, 1);
      fill_operator(prob.A, 21);
      ExecContext ctx = make_ctx(VlaExecMode::Native, fuse);
      auto M = make_preconditioner("jacobi", ctx, prob.A);
      DistVector xstar(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
      randomize(xstar, 7);
      prob.A.apply(ctx, xstar, b);  // b = A·x*, then solve from x = x*
      BicgstabSolver solver(prob.g, prob.d, 1);
      SolveOptions opt;
      opt.ganged = ganged;
      const auto stats = solver.solve(ctx, prob.A, *M, xstar, b, opt);
      EXPECT_STREQ(stats.stop_reason, "rho breakdown");
      EXPECT_TRUE(stats.stop_reason_set());
      EXPECT_EQ(stats.iterations, 1);
    }
  }
}

TEST(BicgstabEdgePaths, IndefiniteOperatorTerminatesWithReason) {
  // Mixed-sign diagonal: BiCGSTAB may converge, stagnate or break down,
  // but it must terminate with a definitive reason and finite numbers.
  for (const bool ganged : {true, false}) {
    for (const auto fuse : {FuseMode::Off, FuseMode::On}) {
      Problem prob(16, 8, 1);
      fill_operator(prob.A, 31);
      for (int lj = 0; lj < 8; ++lj)
        for (int li = 0; li < 8; ++li) {
          auto cc = prob.A.cc().view(0, 0);
          cc(li, lj) = -cc(li, lj);
        }
      ExecContext ctx = make_ctx(VlaExecMode::Native, fuse);
      auto M = make_preconditioner("identity", ctx, prob.A);
      DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
      randomize(b, 13);
      x.fill(ctx, 0.0);
      BicgstabSolver solver(prob.g, prob.d, 1);
      SolveOptions opt;
      opt.ganged = ganged;
      opt.max_iterations = 50;
      const auto stats = solver.solve(ctx, prob.A, *M, x, b, opt);
      EXPECT_TRUE(stats.stop_reason_set())
          << (ganged ? "ganged" : "classic");
      EXPECT_TRUE(std::isfinite(stats.final_relative_residual));
    }
  }
}

/// The CG analogue paths, pinning the satellite contract: stop_reason is
/// never null/empty after any solve() exit.
TEST(StopReason, NeverEmptyAcrossCgExitPaths) {
  // Tolerance reached.
  {
    Problem prob(16, 8, 1);
    fill_operator(prob.A, 41);
    ExecContext ctx = make_ctx(VlaExecMode::Native, FuseMode::Off);
    auto M = make_preconditioner("jacobi", ctx, prob.A);
    DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
    randomize(b, 17);
    x.fill(ctx, 0.0);
    CgSolver cg(prob.g, prob.d, 1);
    const auto stats = cg.solve(ctx, prob.A, *M, x, b, {});
    EXPECT_STREQ(stats.stop_reason, "tolerance reached");
    EXPECT_TRUE(stats.stop_reason_set());
  }
  // Max iterations.
  {
    Problem prob(16, 8, 1);
    fill_operator(prob.A, 42);
    ExecContext ctx = make_ctx(VlaExecMode::Native, FuseMode::Off);
    auto M = make_preconditioner("identity", ctx, prob.A);
    DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
    randomize(b, 19);
    x.fill(ctx, 0.0);
    CgSolver cg(prob.g, prob.d, 1);
    SolveOptions opt;
    opt.max_iterations = 1;
    opt.rel_tol = 1e-15;
    const auto stats = cg.solve(ctx, prob.A, *M, x, b, opt);
    EXPECT_STREQ(stats.stop_reason, "max iterations");
    EXPECT_TRUE(stats.stop_reason_set());
  }
  // Zero rhs.
  {
    Problem prob(16, 8, 1);
    fill_operator(prob.A, 43);
    ExecContext ctx = make_ctx(VlaExecMode::Native, FuseMode::Off);
    auto M = make_preconditioner("jacobi", ctx, prob.A);
    DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
    randomize(x, 23);
    b.fill(ctx, 0.0);
    CgSolver cg(prob.g, prob.d, 1);
    const auto stats = cg.solve(ctx, prob.A, *M, x, b, {});
    EXPECT_STREQ(stats.stop_reason, "zero rhs");
    EXPECT_TRUE(stats.stop_reason_set());
  }
  // Indefinite operator.
  {
    Problem prob(16, 8, 1);
    fill_operator(prob.A, 44);
    auto cc = prob.A.cc().view(0, 0);
    for (int lj = 0; lj < 8; ++lj)
      for (int li = 0; li < 16; ++li) cc(li, lj) = -cc(li, lj);
    ExecContext ctx = make_ctx(VlaExecMode::Native, FuseMode::Off);
    auto M = make_preconditioner("identity", ctx, prob.A);
    DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
    randomize(b, 29);
    x.fill(ctx, 0.0);
    CgSolver cg(prob.g, prob.d, 1);
    const auto stats = cg.solve(ctx, prob.A, *M, x, b, {});
    EXPECT_STREQ(stats.stop_reason, "indefinite operator");
    EXPECT_TRUE(stats.stop_reason_set());
  }
}

// --- 4. memo-cache observability (perfmon satellite) --------------------------

TEST(MemoCache, CountersTrackHitsAndMisses) {
  Context ctx(VectorArch(512), VlaExecMode::Native);
  EXPECT_EQ(ctx.memo_hits(), 0u);
  EXPECT_EQ(ctx.memo_misses(), 0u);
  std::vector<double> x(100, 1.0), y(100, 2.0);
  daxpy(ctx, 2.0, x, y);
  EXPECT_EQ(ctx.memo_misses(), 1u);
  EXPECT_EQ(ctx.memo_hits(), 0u);
  for (int i = 0; i < 5; ++i) daxpy(ctx, 2.0, x, y);
  EXPECT_EQ(ctx.memo_misses(), 1u);
  EXPECT_EQ(ctx.memo_hits(), 5u);
  // Forks share the fork family's counters.
  Context child = ctx.fork();
  daxpy(child, 2.0, x, y);
  EXPECT_EQ(ctx.memo_hits(), 6u);
  (void)ctx.take_counts();
  (void)child.take_counts();

  const auto before = perfmon::MemoCacheStats::of(ctx);
  daxpy(ctx, 2.0, x, y);
  (void)ctx.take_counts();
  const auto delta = perfmon::MemoCacheStats::of(ctx).since(before);
  EXPECT_EQ(delta.hits, 1u);
  EXPECT_EQ(delta.misses, 0u);

  const auto stats = perfmon::MemoCacheStats::of(ctx);
  EXPECT_EQ(stats.probes(), stats.hits + stats.misses);
  EXPECT_GT(stats.hit_rate(), 0.5);
  const std::string line = perfmon::format_memo_cache(stats);
  EXPECT_NE(line.find("memo cache:"), std::string::npos);
  EXPECT_NE(line.find("hit rate"), std::string::npos);
}

TEST(MemoCache, InterpretModeNeverProbes) {
  Context ctx(VectorArch(512), VlaExecMode::Interpret);
  std::vector<double> x(64, 1.0), y(64, 2.0);
  daxpy(ctx, 2.0, x, y);
  (void)ctx.take_counts();
  EXPECT_EQ(ctx.memo_hits() + ctx.memo_misses(), 0u);
}

}  // namespace
}  // namespace v2d::linalg
