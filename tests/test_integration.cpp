/// \file test_integration.cpp
/// \brief Cross-module integration tests asserting the paper's headline
/// shapes on reduced problem sizes.

#include <gtest/gtest.h>

#include <sstream>

#include "core/v2d.hpp"
#include <map>

#include "linalg/kernels.hpp"
#include "linalg/precond.hpp"
#include "linalg/stencil_op.hpp"
#include "rad/fld.hpp"
#include "rad/gaussian.hpp"
#include "support/rng.hpp"

namespace v2d {
namespace {

/// Run the Table II driver shape on a small system and return the
/// per-routine SVE/no-SVE ratios.
std::map<std::string, double> kernel_ratios(int reps) {
  using namespace linalg;
  const grid::Grid2D g(25, 20, 0, 1, 0, 1);
  const grid::Decomposition dec(g, mpisim::CartTopology(1, 1));
  const auto base = compiler::cray_2103();
  mpisim::ExecModel em(sim::MachineSpec::a64fx(),
                       {base.without_sve(), base}, 1);
  ExecContext ctx(vla::VectorArch(512), &em);

  DistVector x(g, dec, 2), y(g, dec, 2), z(g, dec, 2);
  Rng rng(9);
  for (int j = 0; j < 20; ++j)
    for (int i = 0; i < 25; ++i)
      for (int s = 0; s < 2; ++s) x.field().gset(s, i, j, 0.5 + rng.uniform());
  y.copy_from(ctx, x);
  z.copy_from(ctx, x);
  StencilOperator A(g, dec, 2);
  A.cc().fill(4.0);
  A.cw().fill(-1.0);
  A.ce().fill(-1.0);
  A.cs().fill(-1.0);
  A.cn().fill(-1.0);
  A.zero_boundary_coefficients();
  A.set_evaluation_overhead(kMatvecEvalDoublesRead, kMatvecEvalFlops);

  for (int r = 0; r < reps; ++r) {
    A.apply(ctx, x, y);
    (void)DistVector::dot(ctx, x, y);
    y.daxpy(ctx, 1.0001, x);
    y.dscal(ctx, 0.5, 1.0001);
    z.ddaxpy(ctx, 1.0001, x, 0.999, y);
  }
  const auto no_sve = em.merged_ledger(0);
  const auto sve = em.merged_ledger(1);
  std::map<std::string, double> ratios;
  for (const char* region : {"matvec", "dprod", "daxpy", "dscal", "ddaxpy"}) {
    ratios[region] = sve.at(region).total_cycles / no_sve.at(region).total_cycles;
  }
  return ratios;
}

TEST(PaperShapes, TableTwoRatiosInBand) {
  // Paper band: 0.16–0.31 across the five routines (Cray, A64FX).
  const auto ratios = kernel_ratios(50);
  for (const auto& [region, ratio] : ratios) {
    EXPECT_GT(ratio, 0.10) << region;
    EXPECT_LT(ratio, 0.40) << region;
  }
  // Orderings the paper reports: MATVEC speeds up most, DSCAL least.
  EXPECT_LT(ratios.at("matvec"), ratios.at("dscal"));
  EXPECT_LT(ratios.at("dprod"), ratios.at("daxpy"));
}

TEST(PaperShapes, WholeCodeSpeedupSmallerThanKernelSpeedup) {
  // The paper's principal conclusion: the full multi-physics code gains
  // far less from SVE than the isolated kernels do.
  core::RunConfig cfg;
  cfg.nx1 = 50;
  cfg.nx2 = 25;
  cfg.steps = 2;
  cfg.compilers = {"cray", "cray-noopt"};
  core::Simulation sim(cfg);
  sim.run();
  const double whole_code_ratio = sim.elapsed(0) / sim.elapsed(1);
  const auto kernels = kernel_ratios(20);
  // Whole code: paper sees 181/263 ≈ 0.69; kernels 0.16–0.31.
  EXPECT_GT(whole_code_ratio, 0.5);
  EXPECT_LT(whole_code_ratio, 0.95);
  for (const auto& [region, ratio] : kernels)
    EXPECT_LT(ratio, whole_code_ratio) << region;
}

TEST(PaperShapes, MatvecDominatesSingleProcessor) {
  // Paper §II-E: ~141 s of 181 s in matvec at one processor, ~14 s in
  // preconditioning.
  core::RunConfig cfg;
  cfg.nx1 = 100;
  cfg.nx2 = 50;
  cfg.steps = 2;
  cfg.compilers = {"cray"};
  core::Simulation sim(cfg);
  sim.run();
  const auto led = sim.exec().merged_ledger(0);
  const double freq = sim.exec().cost_model().machine().freq_hz;
  const double total = sim.elapsed(0);
  const double matvec = led.at("matvec").total_cycles / freq;
  const double precond = (led.at("precond").total_cycles +
                          led.at("precond-build").total_cycles) /
                         freq;
  EXPECT_GT(matvec / total, 0.5);
  EXPECT_LT(precond / total, 0.15);
  EXPECT_GT(matvec, 4.0 * precond);
}

TEST(PaperShapes, Fig1FiveBandsAtX1Spacing) {
  // "On either side of the diagonal are two adjacent diagonals with two
  // outlying diagonals spaced farther from the diagonal. The x1 parameter
  // indicates the distance of the two outlying diagonals."
  using namespace linalg;
  const grid::Grid2D g(200, 100, -1, 1, -0.5, 0.5);
  const grid::Decomposition dec(g, mpisim::CartTopology(1, 1));
  rad::OpacitySet opac(2);
  for (int s = 0; s < 2; ++s)
    opac.scattering(s) = rad::OpacityLaw::constant(10.0);
  rad::FldConfig fcfg;
  fcfg.include_absorption = false;
  rad::FldBuilder builder(g, dec, 2, opac, fcfg);
  StencilOperator A(g, dec, 2);
  DistVector e(g, dec, 2), rhs(g, dec, 2);
  rad::GaussianPulse pulse;
  pulse.fill(e, 0.0);
  linalg::ExecContext ctx;
  builder.build_diffusion(ctx, e, e, 0.03, A, rhs);
  const BandedMatrix M = A.assemble();
  EXPECT_EQ(M.size(), 40000);
  EXPECT_EQ(M.offsets(), (std::vector<std::int64_t>{-200, -1, 0, 1, 200}));
  // Every interior row carries all five bands with nonzero values.
  const std::int64_t row = g.linear_index(0, 100, 50);
  for (const auto off : {std::int64_t{-200}, std::int64_t{-1}, std::int64_t{0},
                         std::int64_t{1}, std::int64_t{200}}) {
    EXPECT_NE(M.get(row, off), 0.0) << "offset " << off;
  }
  // The rendered block shows the adjacent and outlying diagonals.
  const std::string block = M.render_block(400, 400);
  auto at = [&](std::int64_t r, std::int64_t c) {
    return block[static_cast<std::size_t>(r * 401 + c)];
  };
  EXPECT_EQ(at(250, 250), '*');  // main diagonal
  EXPECT_EQ(at(250, 249), '*');  // adjacent
  EXPECT_EQ(at(250, 251), '*');
  EXPECT_EQ(at(250, 50), '*');   // outlying at distance x1 = 200
  EXPECT_EQ(at(150, 350), '*');
  EXPECT_EQ(at(250, 150), '.');  // in between: structurally zero
}

TEST(PaperShapes, CompactTopologyBeatsStripAtTwenty) {
  // Table I, Np = 20: (5,4) < (10,2) < (20,1) for every compiler.
  double prev = 0.0;
  for (const auto [px1, px2] :
       {std::pair{5, 4}, std::pair{10, 2}, std::pair{20, 1}}) {
    core::RunConfig cfg;
    cfg.nx1 = 200;
    cfg.nx2 = 100;
    cfg.steps = 1;
    cfg.nprx1 = px1;
    cfg.nprx2 = px2;
    cfg.compilers = {"cray"};
    core::Simulation sim(cfg);
    sim.run();
    if (prev > 0.0) EXPECT_GT(sim.elapsed(0), prev) << px1 << "x" << px2;
    prev = sim.elapsed(0);
  }
}

TEST(PaperShapes, VlaSweepLongerVectorsFasterComputeBound) {
  // The A64FX runs 512-bit SVE, but VLA code must scale with the vector
  // length: price the same daxpy at 128..2048 bits.
  using namespace linalg;
  const sim::CostModel cm(sim::MachineSpec::a64fx());
  const sim::CodegenFactors f;
  double prev = 1e300;
  for (unsigned bits : {128u, 256u, 512u, 1024u, 2048u}) {
    vla::Context ctx{vla::VectorArch(bits)};
    std::vector<double> x(4096, 1.0), y(4096, 2.0);
    linalg::daxpy(ctx, 1.5, x, y);
    const auto counts = ctx.take_counts();
    const double cycles =
        cm.compute_cycles(counts, sim::ExecMode::SVE, f);
    EXPECT_LT(cycles, prev) << bits;
    prev = cycles;
  }
}

}  // namespace
}  // namespace v2d
