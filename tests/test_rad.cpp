/// \file test_rad.cpp
/// \brief Tests for limiters, opacities, the FLD discretization, the
/// Gaussian-pulse analytics and the 3-solve radiation step.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/banded.hpp"
#include "rad/fld.hpp"
#include "rad/gaussian.hpp"
#include "rad/limiter.hpp"
#include "rad/opacity.hpp"
#include "rad/radstep.hpp"
#include "support/error.hpp"

namespace v2d::rad {
namespace {

// --- limiters -----------------------------------------------------------------

TEST(Limiter, DiffusionLimit) {
  // λ(0) = 1/3 for every limiter.
  for (auto k : {LimiterKind::None, LimiterKind::LevermorePomraning,
                 LimiterKind::Larsen2, LimiterKind::Wilson}) {
    EXPECT_NEAR(flux_limiter(k, 0.0), 1.0 / 3.0, 1e-12) << limiter_name(k);
  }
}

TEST(Limiter, FreeStreamingLimit) {
  // R·λ(R) → 1 as R → ∞ (|F| → cE) for the physical limiters.
  for (auto k : {LimiterKind::LevermorePomraning, LimiterKind::Larsen2,
                 LimiterKind::Wilson}) {
    const double r = 1e8;
    EXPECT_NEAR(r * flux_limiter(k, r), 1.0, 1e-6) << limiter_name(k);
  }
}

TEST(Limiter, MonotoneDecreasing) {
  for (auto k : {LimiterKind::LevermorePomraning, LimiterKind::Larsen2,
                 LimiterKind::Wilson}) {
    double prev = flux_limiter(k, 0.0);
    for (double r = 0.5; r < 100.0; r *= 2.0) {
      const double cur = flux_limiter(k, r);
      EXPECT_LT(cur, prev) << limiter_name(k) << " at R=" << r;
      prev = cur;
    }
  }
}

TEST(Limiter, Names) {
  EXPECT_EQ(limiter_from_name("lp"), LimiterKind::LevermorePomraning);
  EXPECT_EQ(limiter_from_name("none"), LimiterKind::None);
  EXPECT_THROW(limiter_from_name("minmod"), Error);
  EXPECT_STREQ(limiter_name(LimiterKind::Wilson), "wilson");
}

// --- opacity ------------------------------------------------------------------

TEST(Opacity, ConstantLaw) {
  const OpacityLaw k = OpacityLaw::constant(7.5);
  EXPECT_DOUBLE_EQ(k.evaluate(1.0, 1.0), 7.5);
  EXPECT_DOUBLE_EQ(k.evaluate(100.0, 0.01), 7.5);
}

TEST(Opacity, KramersLikePowerLaw) {
  OpacityLaw k;
  k.kappa0 = 2.0;
  k.t_exp = -3.5;
  k.rho_exp = 1.0;
  EXPECT_NEAR(k.evaluate(2.0, 1.0), 2.0 * std::pow(2.0, -3.5), 1e-12);
  EXPECT_NEAR(k.evaluate(1.0, 3.0), 6.0, 1e-12);
}

TEST(Opacity, TotalIsAbsorptionPlusScattering) {
  OpacitySet set(2);
  set.absorption(0) = OpacityLaw::constant(1.0);
  set.scattering(0) = OpacityLaw::constant(9.0);
  EXPECT_DOUBLE_EQ(set.total(0, 1.0, 1.0), 10.0);
}

// --- FLD discretization ----------------------------------------------------------

struct RadSetup {
  grid::Grid2D g;
  grid::Decomposition d;
  OpacitySet opac;
  FldConfig cfg;

  explicit RadSetup(int nx1 = 24, int nx2 = 16, int px1 = 1, int px2 = 1)
      : g(nx1, nx2, -1.0, 1.0, -0.5, 0.5),
        d(g, mpisim::CartTopology(px1, px2)),
        opac(2) {
    for (int s = 0; s < 2; ++s) {
      opac.absorption(s) = OpacityLaw::constant(0.0);
      opac.scattering(s) = OpacityLaw::constant(10.0);
    }
    cfg.include_absorption = false;
    cfg.limiter = LimiterKind::None;  // pure Fick diffusion unless overridden
  }
};

TEST(Fld, RowSumsVanishInteriorly) {
  // With zero-flux boundaries and no absorption, A·1 = V/Δt — the
  // diffusion part must cancel exactly (conservation).
  RadSetup su;
  FldBuilder builder(su.g, su.d, 2, su.opac, su.cfg);
  linalg::StencilOperator A(su.g, su.d, 2);
  linalg::DistVector e(su.g, su.d, 2), rhs(su.g, su.d, 2), ones(su.g, su.d, 2),
      out(su.g, su.d, 2);
  GaussianPulse pulse;
  pulse.fill(e, 0.0);
  const double dt = 0.05;
  linalg::ExecContext ctx;
  builder.build_diffusion(ctx, e, e, dt, A, rhs);
  ones.fill(ctx, 1.0);
  A.apply(ctx, ones, out);
  for (int r = 0; r < su.d.nranks(); ++r) {
    const grid::TileExtent& ext = su.d.extent(r);
    for (int s = 0; s < 2; ++s) {
      const grid::TileView v = out.field().view(r, s);
      for (int lj = 0; lj < ext.nj; ++lj) {
        for (int li = 0; li < ext.ni; ++li) {
          const double vol = su.g.volume(ext.i0 + li, ext.j0 + lj);
          EXPECT_NEAR(v(li, lj), vol / dt, 1e-10 * vol / dt);
        }
      }
    }
  }
}

TEST(Fld, StepConservesTotalEnergy) {
  RadSetup su;
  su.cfg.limiter = LimiterKind::LevermorePomraning;
  FldBuilder builder(su.g, su.d, 2, su.opac, su.cfg);
  RadiationStepper stepper(su.g, su.d, std::move(builder));
  linalg::DistVector e(su.g, su.d, 2);
  GaussianPulse pulse;
  pulse.d_coeff = 1.0 / 30.0;
  pulse.fill(e, 0.0);
  linalg::ExecContext ctx;
  const double before = GaussianPulse::total_energy(e);
  for (int step = 0; step < 3; ++step) {
    const StepStats st = stepper.step(ctx, e, 0.02);
    EXPECT_TRUE(st.all_converged());
  }
  // Zero-flux boundaries + no absorption + zero exchange-to-matter net of
  // emission at T~0 energy... the coupling solve can only exchange between
  // the two species, so the total is conserved.
  const double after = GaussianPulse::total_energy(e);
  EXPECT_NEAR(after, before, 2e-6 * before);
}

TEST(Fld, MatchesAnalyticGaussianFirstOrderInDt) {
  // Unlimited diffusion of the Gaussian pulse vs the exact solution: the
  // backward-Euler error must be small and shrink ~linearly with dt.
  auto error_at = [](double dt, int steps) {
    RadSetup su(64, 32);
    FldBuilder builder(su.g, su.d, 2, su.opac, su.cfg);
    RadiationStepper stepper(su.g, su.d, std::move(builder));
    linalg::DistVector e(su.g, su.d, 2);
    GaussianPulse pulse;
    pulse.d_coeff = 1.0 / 30.0;  // c/(3 kappa_t)
    pulse.t0 = 0.25;  // narrow pulse: keep the free-space solution far
                      // from the zero-flux walls
    pulse.fill(e, 0.0);
    linalg::ExecContext ctx;
    for (int step = 0; step < steps; ++step) stepper.step(ctx, e, dt);
    return pulse.rel_l2_error(e, dt * steps);
  };
  const double coarse = error_at(0.02, 5);  // both to t = 0.1
  const double fine = error_at(0.01, 10);
  EXPECT_LT(coarse, 0.08);
  EXPECT_LT(fine, coarse);
  // First order: halving dt roughly halves the error.
  EXPECT_NEAR(coarse / fine, 2.0, 0.5);
}

TEST(Fld, LimiterReducesFluxOnSteepGradients) {
  // The limited operator's off-diagonals are weaker than Fick's where the
  // field varies steeply.
  RadSetup su;
  su.cfg.limiter = LimiterKind::LevermorePomraning;
  FldBuilder lim(su.g, su.d, 2, su.opac, su.cfg);
  su.cfg.limiter = LimiterKind::None;
  FldBuilder fick(su.g, su.d, 2, su.opac, su.cfg);
  linalg::StencilOperator a_lim(su.g, su.d, 2), a_fick(su.g, su.d, 2);
  linalg::DistVector e(su.g, su.d, 2), rhs(su.g, su.d, 2);
  // Very narrow pulse => steep gradients.
  GaussianPulse pulse;
  pulse.t0 = 0.02;
  pulse.d_coeff = 1.0 / 30.0;
  pulse.fill(e, 0.0);
  linalg::ExecContext ctx;
  lim.build_diffusion(ctx, e, e, 0.05, a_lim, rhs);
  fick.build_diffusion(ctx, e, e, 0.05, a_fick, rhs);
  double sum_lim = 0.0, sum_fick = 0.0;
  const grid::TileExtent& ext = su.d.extent(0);
  const grid::TileView wl = a_lim.cw().view(0, 0);
  const grid::TileView wf = a_fick.cw().view(0, 0);
  for (int lj = 0; lj < ext.nj; ++lj)
    for (int li = 0; li < ext.ni; ++li) {
      sum_lim += std::fabs(wl(li, lj));
      sum_fick += std::fabs(wf(li, lj));
    }
  EXPECT_LT(sum_lim, sum_fick);
}

TEST(Fld, CouplingSolveMovesEnergyBetweenSpecies) {
  RadSetup su;
  su.cfg.exchange_kappa = 2.0;
  FldBuilder builder(su.g, su.d, 2, su.opac, su.cfg);
  linalg::StencilOperator A(su.g, su.d, 2);
  A.enable_coupling();
  linalg::DistVector e(su.g, su.d, 2), rhs(su.g, su.d, 2);
  // Species 0 hot, species 1 cold.
  for (int j = 0; j < su.g.nx2(); ++j)
    for (int i = 0; i < su.g.nx1(); ++i) {
      e.field().gset(0, i, j, 2.0);
      e.field().gset(1, i, j, 1.0);
    }
  linalg::ExecContext ctx;
  builder.build_coupling(ctx, e, e, 0.1, A, rhs);
  // Solve the coupled system.
  linalg::BicgstabSolver solver(su.g, su.d, 2);
  auto M = linalg::make_preconditioner("spai0", ctx, A);
  const auto stats = solver.solve(ctx, A, *M, e, rhs);
  ASSERT_TRUE(stats.converged);
  // The gap between species must shrink everywhere.
  const double gap = e.field().gget(0, 5, 5) - e.field().gget(1, 5, 5);
  EXPECT_GT(gap, 0.0);
  EXPECT_LT(gap, 1.0);
}

TEST(Fld, TemperatureRelaxesTowardRadiation) {
  RadSetup su;
  su.opac.absorption(0) = OpacityLaw::constant(5.0);
  su.opac.absorption(1) = OpacityLaw::constant(5.0);
  su.cfg.include_absorption = true;
  FldBuilder builder(su.g, su.d, 2, su.opac, su.cfg);
  builder.temperature().fill(0.5);  // emission aT^4/2 = 0.03 < E
  linalg::DistVector e(su.g, su.d, 2);
  linalg::ExecContext ctx;
  e.fill(ctx, 2.0);
  const double t_before = builder.temperature().gget(0, 3, 3);
  builder.update_temperature(ctx, e, 0.01);
  EXPECT_GT(builder.temperature().gget(0, 3, 3), t_before);
}

TEST(RadStep, ThreeSolvesPerStep) {
  RadSetup su;
  FldBuilder builder(su.g, su.d, 2, su.opac, su.cfg);
  RadiationStepper stepper(su.g, su.d, std::move(builder));
  linalg::DistVector e(su.g, su.d, 2);
  GaussianPulse pulse;
  pulse.fill(e, 0.0);
  linalg::ExecContext ctx;
  const StepStats st = stepper.step(ctx, e, 0.02);
  EXPECT_TRUE(st.all_converged());
  for (const auto& s : st.solves) EXPECT_GT(s.iterations, 0);
  EXPECT_EQ(st.total_iterations(),
            st.solves[0].iterations + st.solves[1].iterations +
                st.solves[2].iterations);
}

TEST(RadStep, SolveSiteRunsEachSystem) {
  RadSetup su;
  FldBuilder builder(su.g, su.d, 2, su.opac, su.cfg);
  RadiationStepper stepper(su.g, su.d, std::move(builder));
  linalg::DistVector e(su.g, su.d, 2);
  GaussianPulse pulse;
  pulse.fill(e, 0.0);
  linalg::ExecContext ctx;
  for (int site = 0; site < 3; ++site) {
    const auto stats = stepper.solve_site(ctx, e, 0.02, site);
    EXPECT_TRUE(stats.converged) << "site " << site;
  }
  EXPECT_THROW(stepper.solve_site(ctx, e, 0.02, 3), Error);
}

TEST(Gaussian, AnalyticSelfConsistency) {
  GaussianPulse pulse;
  pulse.e_total = 2.0;
  pulse.d_coeff = 0.1;
  pulse.t0 = 0.5;
  // Peak decays like 1/(t + t0).
  const double p0 = pulse.evaluate(0, 0, 0.0);
  const double p1 = pulse.evaluate(0, 0, 0.5);
  EXPECT_NEAR(p0 / p1, 2.0, 1e-12);
  // Pulse integrates to e_total (numerically, wide grid).
  const grid::Grid2D g(200, 200, -10, 10, -10, 10);
  const grid::Decomposition d(g, mpisim::CartTopology(1, 1));
  linalg::DistVector e(g, d, 1);
  pulse.fill(e, 0.0);
  EXPECT_NEAR(GaussianPulse::total_energy(e), 2.0, 1e-3);
}

}  // namespace
}  // namespace v2d::rad
