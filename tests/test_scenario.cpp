/// \file test_scenario.cpp
/// \brief The scenario subsystem: registry, catalog correctness, and the
/// bit-identity pin of gaussian-pulse against the pre-refactor driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "compiler/profile.hpp"
#include "core/v2d.hpp"
#include "linalg/stencil_op.hpp"
#include "rad/fld.hpp"
#include "rad/gaussian.hpp"
#include "rad/radstep.hpp"
#include "scenario/registry.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

#include "ledger_testutil.hpp"

namespace v2d {
namespace {

// --- registry ----------------------------------------------------------------

TEST(ScenarioRegistry, CatalogHoldsTheFourBuiltins) {
  auto& reg = scenario::ScenarioRegistry::instance();
  const auto names = reg.names();
  for (const char* expected : {"gaussian-pulse", "sedov-radhydro",
                               "hotspot-absorber", "two-species-relax"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                names.end())
        << expected;
    EXPECT_FALSE(reg.description(expected).empty());
    auto problem = reg.create(expected);
    ASSERT_NE(problem, nullptr);
    EXPECT_STREQ(problem->name(), expected);
  }
}

TEST(ScenarioRegistry, DuplicateRegistrationIsAHardError) {
  // A private registry: duplicate names must fail at registration time
  // and leave the catalog unchanged.
  scenario::ScenarioRegistry reg;
  reg.add("my-problem", "first registration",
          [] { return scenario::ScenarioRegistry::instance().create(
                   "gaussian-pulse"); });
  try {
    reg.add("my-problem", "second registration",
            [] { return scenario::ScenarioRegistry::instance().create(
                     "gaussian-pulse"); });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("my-problem"), std::string::npos);
    EXPECT_NE(msg.find("registered twice"), std::string::npos);
    // The message names the entry already holding the slot.
    EXPECT_NE(msg.find("first registration"), std::string::npos);
  }
  // The losing registration did not clobber the catalog entry.
  EXPECT_EQ(reg.description("my-problem"), "first registration");
  EXPECT_EQ(reg.names().size(), 1u);
}

TEST(ScenarioRegistry, BuiltinCatalogRejectsDuplicates) {
  EXPECT_THROW(scenario::ScenarioRegistry::instance().add(
                   "gaussian-pulse", "impostor", [] {
                     return std::unique_ptr<scenario::Problem>();
                   }),
               Error);
  // The built-in entry survived the rejected add.
  EXPECT_TRUE(scenario::ScenarioRegistry::instance().has("gaussian-pulse"));
}

TEST(ScenarioRegistry, UnknownNameListsTheCatalog) {
  try {
    scenario::ScenarioRegistry::instance().create("no-such-problem");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-problem"), std::string::npos);
    EXPECT_NE(msg.find("gaussian-pulse"), std::string::npos);
    EXPECT_NE(msg.find("sedov-radhydro"), std::string::npos);
  }
}

TEST(ScenarioRegistry, RunConfigRejectsUnknownProblemAtBuildTime) {
  Options opt;
  core::RunConfig::register_options(opt);
  const char* argv[] = {"prog", "--problem", "typo-pulse"};
  opt.parse(3, argv);
  try {
    (void)core::RunConfig::from_options(opt);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("typo-pulse"), std::string::npos);
    EXPECT_NE(msg.find("known problems"), std::string::npos);
    EXPECT_NE(msg.find("gaussian-pulse"), std::string::npos);
  }
}

TEST(ScenarioRegistry, SimulationConstructorRejectsUnknownProblem) {
  core::RunConfig cfg;
  cfg.problem = "no-such-problem";
  EXPECT_THROW(core::Simulation sim(cfg), Error);
}

// --- gaussian-pulse bit-identity pin -----------------------------------------

/// The pre-refactor Simulation hardwired this exact wiring into its
/// constructor and stepped it with cfg.dt.  Replicating it by hand and
/// comparing fields, per-rank clocks and full ledgers against the
/// scenario-driven driver pins the refactor: the scenario layer must add
/// or reorder no priced operation.
struct HardwiredReplica {
  grid::Grid2D g;
  grid::Decomposition dec;
  mpisim::ExecModel em;
  linalg::ExecContext ctx;
  rad::RadiationStepper stepper;
  linalg::DistVector e;
  rad::GaussianPulse pulse;

  static rad::OpacitySet opacities(const core::RunConfig& cfg) {
    rad::OpacitySet opac(cfg.ns);
    for (int s = 0; s < cfg.ns; ++s) {
      const double shade = 1.0 + 0.1 * s;
      const double ka = cfg.kappa_absorb * shade;
      opac.absorption(s) = rad::OpacityLaw::constant(ka);
      opac.scattering(s) = rad::OpacityLaw::constant(
          std::max(0.0, cfg.kappa_total * shade - ka));
    }
    return opac;
  }

  static rad::FldConfig fld_config(const core::RunConfig& cfg) {
    rad::FldConfig fc;
    fc.limiter = cfg.limiter;
    fc.include_absorption = cfg.kappa_absorb > 0.0;
    fc.exchange_kappa = cfg.exchange_kappa;
    return fc;
  }

  static linalg::SolveOptions solve_options(const core::RunConfig& cfg) {
    linalg::SolveOptions opt;
    opt.rel_tol = cfg.rel_tol;
    opt.max_iterations = cfg.max_iterations;
    opt.ganged = cfg.ganged;
    return opt;
  }

  static std::vector<compiler::CodegenProfile> profiles(
      const core::RunConfig& cfg) {
    std::vector<compiler::CodegenProfile> out;
    for (const auto& n : cfg.compilers)
      out.push_back(compiler::find_profile(n));
    return out;
  }

  explicit HardwiredReplica(const core::RunConfig& cfg)
      : g(cfg.nx1, cfg.nx2, -1.0, 1.0, -0.5, 0.5),
        dec(g, mpisim::CartTopology(cfg.nprx1, cfg.nprx2)),
        em(sim::MachineSpec::a64fx(), profiles(cfg), cfg.nranks()),
        ctx(vla::VectorArch(cfg.vector_bits), &em,
            vla::vla_exec_mode_from_name(cfg.vla_exec),
            linalg::fuse_mode_from_name(cfg.fuse)),
        stepper(g, dec,
                rad::FldBuilder(g, dec, cfg.ns, opacities(cfg),
                                fld_config(cfg)),
                solve_options(cfg), cfg.preconditioner, cfg.mg_options()),
        e(g, dec, cfg.ns) {
    set_host_threads(cfg.host_threads);
    pulse.d_coeff = fld_config(cfg).c_light / (3.0 * cfg.kappa_total);
    pulse.t0 = 1.0;
    pulse.fill(e, 0.0);
  }
};

TEST(GaussianPulseScenario, BitIdenticalToTheHardwiredDriver) {
  for (const char* vla_exec : {"native", "interpret"}) {
    core::RunConfig cfg;
    cfg.nx1 = 40;
    cfg.nx2 = 20;
    cfg.steps = 2;
    cfg.dt = 0.02;
    cfg.nprx1 = 2;
    cfg.nprx2 = 2;
    cfg.compilers = {"cray", "gnu"};
    cfg.vla_exec = vla_exec;

    core::Simulation sim(cfg);
    sim.run();

    HardwiredReplica ref(cfg);
    for (int s = 0; s < cfg.steps; ++s) {
      ASSERT_TRUE(ref.stepper.step(ref.ctx, ref.e, cfg.dt).all_converged());
    }

    // Same trajectory, to the last bit.
    const auto field = sim.radiation().field().gather_global();
    const auto field_ref = ref.e.field().gather_global();
    ASSERT_EQ(field.size(), field_ref.size());
    for (std::size_t i = 0; i < field.size(); ++i)
      ASSERT_EQ(field[i], field_ref[i]) << vla_exec << " zone " << i;

    // Same simulated clocks and ledgers, per profile, per rank.
    ASSERT_EQ(sim.exec().nprofiles(), ref.em.nprofiles());
    for (std::size_t p = 0; p < ref.em.nprofiles(); ++p) {
      for (int r = 0; r < ref.em.nranks(); ++r) {
        const std::string where = std::string(vla_exec) + " p" +
                                  std::to_string(p) + " r" +
                                  std::to_string(r);
        EXPECT_EQ(sim.exec().rank_time(p, r), ref.em.rank_time(p, r))
            << where;
        testutil::expect_ledgers_identical(sim.exec().ledger(p, r),
                                           ref.em.ledger(p, r), where);
      }
    }

    // Same analytic reference.
    EXPECT_EQ(sim.analytic_error(),
              ref.pulse.rel_l2_error(ref.e, cfg.steps * cfg.dt));
  }
}

// --- the new catalog entries run end-to-end priced ---------------------------

TEST(SedovRadhydroScenario, ConservesMassAndPricesHydroKernels) {
  core::RunConfig cfg;
  cfg.problem = "sedov-radhydro";
  cfg.nx1 = 32;
  cfg.nx2 = 32;
  cfg.steps = 5;
  cfg.nprx1 = 2;
  cfg.nprx2 = 2;
  cfg.kappa_total = 5.0;
  core::Simulation sim(cfg);
  sim.run();
  EXPECT_EQ(sim.steps_taken(), 5);
  // Conservation pin: HLL in a reflecting box conserves mass to round-off.
  EXPECT_LT(sim.analytic_error(), 1.0e-12);
  EXPECT_GT(sim.total_energy(), 0.0);
  // The hydro sweeps, CFL reduction and radiation-gas exchange are all
  // recorded and priced alongside the radiation solves.
  const auto led = sim.exec().merged_ledger(0);
  for (const char* region : {"hydro-sweep", "hydro-cfl", "rad-gas-exchange",
                             "matvec", "physics-assembly"}) {
    ASSERT_TRUE(led.has(region)) << region;
    EXPECT_GT(led.at(region).total_cycles, 0.0) << region;
  }
  // CFL picks the step: simulated time advanced but not by steps*dt.
  EXPECT_GT(sim.time(), 0.0);
  EXPECT_LT(sim.time(), cfg.steps * cfg.dt);
  EXPECT_GT(sim.elapsed(0), 0.0);
}

TEST(HotspotAbsorberScenario, StaysInsideTheDiscreteDecayBracket) {
  core::RunConfig cfg;
  cfg.problem = "hotspot-absorber";
  cfg.nx1 = 48;
  cfg.nx2 = 24;
  cfg.steps = 6;
  cfg.nprx1 = 2;
  cfg.nprx2 = 2;
  core::Simulation sim(cfg);
  const double e0 = sim.total_energy();
  sim.run();
  // Energy decays (absorption, no emission) and the total stays inside
  // the analytic backward-Euler bracket up to solver tolerance.
  EXPECT_LT(sim.total_energy(), e0);
  EXPECT_LT(sim.analytic_error(), 1.0e-6);
}

TEST(HotspotAbsorberScenario, NonuniformAssemblyExchangesMaterialHalos) {
  // One diffusion assembly: the uniform-material path exchanges only the
  // limiter field's halos; the power-law path adds the rho and T halos —
  // exactly three exchanges over the same transfer graph.
  const grid::Grid2D g(16, 16, 0.0, 1.0, 0.0, 1.0);
  const grid::Decomposition dec(g, mpisim::CartTopology(2, 1));
  auto count_halo_messages = [&](const rad::OpacitySet& opac) {
    mpisim::ExecModel em(sim::MachineSpec::a64fx(), {compiler::cray_2103()},
                         dec.nranks());
    linalg::ExecContext ctx(vla::VectorArch(512), &em,
                            vla::VlaExecMode::Native);
    rad::FldBuilder builder(g, dec, 1, opac, rad::FldConfig{});
    linalg::StencilOperator A(g, dec, 1);
    linalg::DistVector e(g, dec, 1), rhs(g, dec, 1);
    e.field().fill(1.0);
    builder.build_diffusion(ctx, e, e, 0.01, A, rhs);
    return em.merged_ledger(0).at("mpi_halo").comm_messages;
  };
  rad::OpacitySet uniform(1);
  uniform.scattering(0) = rad::OpacityLaw::constant(5.0);
  rad::OpacitySet powerlaw(1);
  powerlaw.scattering(0) = rad::OpacityLaw::constant(5.0);
  powerlaw.absorption(0) = rad::OpacityLaw{0.5, 1.0, 0.0, 1.0, 1.0};
  const auto msgs_uniform = count_halo_messages(uniform);
  EXPECT_GT(msgs_uniform, 0u);
  EXPECT_EQ(count_halo_messages(powerlaw), 3 * msgs_uniform);
}

TEST(TwoSpeciesRelaxScenario, MatchesTheClosedFormContraction) {
  core::RunConfig cfg;
  cfg.problem = "two-species-relax";
  cfg.nx1 = 24;
  cfg.nx2 = 24;
  cfg.steps = 8;
  cfg.exchange_kappa = 2.0;  // exchange-dominated
  core::Simulation sim(cfg);
  const double e0 = sim.total_energy();
  sim.run();
  // Per-step contraction is exact; the measured mean difference must track
  // it to solver tolerance, and the species sum is conserved.
  EXPECT_LT(sim.analytic_error(), 1.0e-6);
  EXPECT_NEAR(sim.total_energy(), e0, 1.0e-8 * e0);
  // Equilibration really happened: the predicted difference shrank.
  const double contraction =
      std::pow(1.0 + 2.0 * cfg.dt * cfg.exchange_kappa, -cfg.steps);
  EXPECT_LT(contraction, 0.5);
}

TEST(TwoSpeciesRelaxScenario, RequiresTwoSpecies) {
  core::RunConfig cfg;
  cfg.problem = "two-species-relax";
  cfg.ns = 1;
  EXPECT_THROW(core::Simulation sim(cfg), Error);
}

}  // namespace
}  // namespace v2d
